//! Append-only checkpoint journal for resumable matrix runs.
//!
//! The journal is line-oriented: a versioned header line followed by one
//! compact-JSON entry per completed cell, appended, fsynced, the moment
//! the cell finishes. A run killed mid-flight therefore leaves a valid
//! journal of everything it completed; `--resume` replays those cells
//! from the journal and only executes the rest.
//!
//! Since version 2 every entry line is self-checking:
//!
//! ```text
//! {"seq":K,"crc":C,"body":{...v1 entry shape...}}
//! ```
//!
//! `seq` is the strictly increasing append sequence number and `crc` is
//! the CRC-32 (IEEE) of `"{seq}:{body}"` with `body` in compact
//! rendering, so any single-byte damage — to the body, the sequence
//! number, or the checksum itself — is detected at load time. Resume
//! distinguishes two kinds of damage:
//!
//! * **Torn tail** — the final line has no terminating newline. That is
//!   the expected wreckage of a killed run; the fragment is discarded,
//!   the file is truncated back to its last clean byte before appending,
//!   and the victim cell simply re-runs.
//! * **Mid-file corruption** — a newline-terminated line that fails its
//!   CRC, does not parse, or breaks sequence monotonicity. That means
//!   the storage lied after an acknowledged fsync; resume refuses with
//!   [`TpsError::CheckpointCorrupt`] unless salvage mode is requested,
//!   which drops the damaged entries (re-running their cells) and
//!   reports how many were dropped.
//!
//! Entries round-trip the **full** [`MachineRunStats`] — not the
//! abridged stats block of the report — so a resumed run's aggregated
//! report, including derived metrics, per-tenant breakdowns, and the
//! rendered JSON document, is byte-identical to an uninterrupted run's.
//! Solo cells journal only the rollup (the per-tenant vector is
//! reconstructed on load), so single-process journals written before the
//! multi-tenant machine replay unchanged.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Mutex;

use tps_core::{PageOrder, TenantFaultCause, TpsError};
use tps_os::OsStats;
use tps_tlb::TlbStats;
use tps_wl::WorkloadProfile;

use crate::stats::{HwFaultStats, MachineRunStats, RunStats, TenantOutcome};

use super::io::{crc32, ArtifactIo, ArtifactSink};
use super::json::Json;
use super::report::{CellFailure, FailureCause};
use super::spec::ExperimentMatrix;

/// The `"schema"` marker on a journal's header line.
pub const CHECKPOINT_SCHEMA: &str = "tps-experiment-checkpoint";

/// Version of the journal layout. Bump on any entry-shape change: resume
/// refuses other versions rather than guessing. Version 2 added per-entry
/// sequence numbers and CRC-32 checksums.
pub const CHECKPOINT_VERSION: u64 = 2;

/// One journaled outcome, keyed by the cell's stable index.
pub(crate) type ResumeMap = BTreeMap<u64, Result<MachineRunStats, CellFailure>>;

/// Everything [`load`] recovered from a journal.
#[derive(Debug)]
pub(crate) struct LoadedJournal {
    /// Completed cells, replayed instead of executed.
    pub(crate) done: ResumeMap,
    /// The sequence number the next appended entry must carry.
    pub(crate) next_seq: u64,
    /// Byte length of the clean newline-terminated prefix; appending
    /// truncates the file here first, cutting off any torn tail.
    pub(crate) clean_len: u64,
    /// Corrupt entries dropped by salvage mode (0 without salvage).
    pub(crate) dropped: u64,
}

/// Serializer/appender for the journal. Shared by the worker pool behind
/// a mutex so each entry is written — and fsynced — as one atomic line.
pub(crate) struct CheckpointWriter<'io> {
    inner: Mutex<WriterState<'io>>,
}

struct WriterState<'io> {
    sink: Box<dyn ArtifactSink + 'io>,
    next_seq: u64,
    /// Set when the previous append failed partway: the next entry is
    /// prefixed with a newline so its line framing re-synchronizes
    /// regardless of how many bytes of the failed record landed.
    dirty: bool,
}

impl<'io> CheckpointWriter<'io> {
    /// Creates a fresh journal at `path` and writes (and syncs) the
    /// header line. Refuses to clobber an existing journal that already
    /// contains entries, or that belongs to a different experiment spec,
    /// unless `force` is set.
    pub(crate) fn create(
        io: &'io dyn ArtifactIo,
        path: &Path,
        matrix: &ExperimentMatrix,
        force: bool,
    ) -> Result<Self, TpsError> {
        if !force {
            guard_clobber(path, matrix)?;
        }
        let mut sink = io
            .create(path)
            .map_err(|e| TpsError::checkpoint(format!("cannot create {}: {e}", path.display())))?;
        let header = header_json(matrix).render_compact();
        sink.write_all(header.as_bytes())
            .and_then(|()| sink.write_all(b"\n"))
            .and_then(|()| sink.sync_data())
            .map_err(|e| TpsError::checkpoint(format!("journal write failed: {e}")))?;
        Ok(CheckpointWriter {
            inner: Mutex::new(WriterState {
                sink,
                next_seq: 0,
                dirty: false,
            }),
        })
    }

    /// Reopens an existing journal for appending (resume continues
    /// journaling into the same file). `next_seq` and `truncate_to` come
    /// from [`load`]: appended entries continue the sequence, and any
    /// torn tail beyond the clean prefix is cut off first.
    pub(crate) fn append_to(
        io: &'io dyn ArtifactIo,
        path: &Path,
        next_seq: u64,
        truncate_to: Option<u64>,
    ) -> Result<Self, TpsError> {
        let sink = io.open_append(path, truncate_to).map_err(|e| {
            TpsError::checkpoint(format!("cannot append to {}: {e}", path.display()))
        })?;
        Ok(CheckpointWriter {
            inner: Mutex::new(WriterState {
                sink,
                next_seq,
                dirty: false,
            }),
        })
    }

    /// Appends one completed cell as a checksummed, sequenced entry line
    /// and fsyncs, so neither a process kill nor a host crash can lose an
    /// acknowledged cell.
    pub(crate) fn record(
        &self,
        index: u64,
        outcome: &Result<MachineRunStats, CellFailure>,
    ) -> Result<(), TpsError> {
        let mut state = self.lock();
        let seq = state.next_seq;
        // A failed append consumes its sequence number: seq gaps are
        // legal (strict monotonicity is all load checks), overlaps would
        // read as corruption.
        state.next_seq = seq + 1;
        let mut line = String::new();
        if state.dirty {
            line.push('\n');
        }
        line.push_str(&entry_line(seq, index, outcome));
        line.push('\n');
        let result = state
            .sink
            .write_all(line.as_bytes())
            .and_then(|()| state.sink.sync_data());
        state.dirty = result.is_err();
        result.map_err(|e| TpsError::checkpoint(format!("journal write failed: {e}")))
    }

    /// Final sync before the journal is dropped, so a host crash after a
    /// completed run cannot lose its tail.
    pub(crate) fn finish(&self) -> Result<(), TpsError> {
        self.lock()
            .sink
            .sync_data()
            .map_err(|e| TpsError::checkpoint(format!("journal sync failed: {e}")))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WriterState<'io>> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl std::fmt::Debug for CheckpointWriter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        f.debug_struct("CheckpointWriter")
            .field("next_seq", &state.next_seq)
            .field("dirty", &state.dirty)
            .finish_non_exhaustive()
    }
}

/// The clobber guard of [`CheckpointWriter::create`]: refuse to truncate
/// anything but a missing, empty, or same-spec entry-free journal.
fn guard_clobber(path: &Path, matrix: &ExperimentMatrix) -> Result<(), TpsError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => {
            return Err(TpsError::checkpoint(format!(
                "cannot inspect existing {}: {e}",
                path.display()
            )))
        }
    };
    if bytes.is_empty() {
        return Ok(());
    }
    let text = String::from_utf8_lossy(&bytes);
    let mut lines = text.split('\n');
    let header = lines.next().unwrap_or("");
    let refuse = |what: &str| {
        Err(TpsError::checkpoint(format!(
            "refusing to overwrite {}: {what} (pass --force-checkpoint to discard it)",
            path.display()
        )))
    };
    let Ok(header) = Json::parse(header) else {
        return refuse("existing file is not a checkpoint journal");
    };
    if header.get("schema").and_then(Json::as_str) != Some(CHECKPOINT_SCHEMA) {
        return refuse("existing file is not a checkpoint journal");
    }
    if header.get("fingerprint").and_then(Json::as_u64) != Some(matrix.spec().fingerprint()) {
        return refuse("existing journal belongs to a different experiment spec");
    }
    let entries = lines.filter(|l| !l.is_empty()).count();
    if entries > 0 {
        return refuse(&format!(
            "existing journal already holds {entries} entr{}",
            {
                if entries == 1 {
                    "y"
                } else {
                    "ies"
                }
            }
        ));
    }
    Ok(())
}

/// Loads a journal and returns the completed cells, validating that it
/// belongs to `matrix` (schema, version, spec fingerprint, cell count)
/// and that every entry passes its CRC and sequence check.
///
/// # Errors
///
/// [`TpsError::Checkpoint`] on I/O failure, a missing or mismatched
/// header, or an unsupported version. [`TpsError::CheckpointCorrupt`]
/// when a newline-terminated entry line fails its CRC, does not parse,
/// or breaks sequence monotonicity — unless `salvage` is set, in which
/// case the damaged entries are dropped (and counted) so their cells
/// re-run. A torn **final** line without a newline is never an error:
/// that is the expected wreckage of a killed run.
pub(crate) fn load(
    path: &Path,
    matrix: &ExperimentMatrix,
    salvage: bool,
) -> Result<LoadedJournal, TpsError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| TpsError::checkpoint(format!("cannot read {}: {e}", path.display())))?;
    let mut segments = text.split_inclusive('\n');
    let header_seg = segments
        .next()
        .filter(|seg| seg.ends_with('\n'))
        .ok_or_else(|| TpsError::checkpoint("journal header missing or torn"))?;
    let header = Json::parse(header_seg.trim_end_matches('\n'))
        .map_err(|e| TpsError::checkpoint_corrupt(format!("malformed journal header: {e}")))?;
    check_header(&header, matrix)?;

    let mut loaded = LoadedJournal {
        done: ResumeMap::new(),
        next_seq: 0,
        clean_len: header_seg.len() as u64,
        dropped: 0,
    };
    for (lineno, seg) in segments.enumerate() {
        let Some(line) = seg.strip_suffix('\n') else {
            // Torn tail: the kill victim's partial entry. Stop here;
            // clean_len excludes it so append truncates it away.
            break;
        };
        if line.is_empty() {
            // Re-synchronization blank from a recovered append failure.
            loaded.clean_len += seg.len() as u64;
            continue;
        }
        let damage = match parse_entry_line(line, matrix.cells().len() as u64) {
            Ok((seq, index, outcome)) => {
                if seq >= loaded.next_seq {
                    loaded.next_seq = seq + 1;
                    loaded.done.insert(index, outcome);
                    loaded.clean_len += seg.len() as u64;
                    continue;
                }
                format!("sequence number {seq} is not increasing")
            }
            Err(e) => e,
        };
        if salvage {
            loaded.dropped += 1;
            loaded.clean_len += seg.len() as u64;
        } else {
            return Err(TpsError::checkpoint_corrupt(format!(
                "corrupt journal entry at line {}: {damage}",
                lineno + 2
            )));
        }
    }
    Ok(loaded)
}

fn header_json(matrix: &ExperimentMatrix) -> Json {
    let mut header = Json::object();
    header.set("schema", Json::Str(CHECKPOINT_SCHEMA.to_string()));
    header.set("version", Json::U64(CHECKPOINT_VERSION));
    header.set("fingerprint", Json::U64(matrix.spec().fingerprint()));
    header.set("cells", Json::U64(matrix.cells().len() as u64));
    header
}

fn check_header(header: &Json, matrix: &ExperimentMatrix) -> Result<(), TpsError> {
    let schema = header.get("schema").and_then(Json::as_str);
    if schema != Some(CHECKPOINT_SCHEMA) {
        return Err(TpsError::checkpoint(format!(
            "not a checkpoint journal (schema {schema:?})"
        )));
    }
    let version = header.get("version").and_then(Json::as_u64);
    if version != Some(CHECKPOINT_VERSION) {
        return Err(TpsError::checkpoint(format!(
            "unsupported journal version {version:?} (expected {CHECKPOINT_VERSION})"
        )));
    }
    let fingerprint = header.get("fingerprint").and_then(Json::as_u64);
    if fingerprint != Some(matrix.spec().fingerprint()) {
        return Err(TpsError::checkpoint(
            "journal was written for a different experiment spec",
        ));
    }
    let cells = header.get("cells").and_then(Json::as_u64);
    if cells != Some(matrix.cells().len() as u64) {
        return Err(TpsError::checkpoint(format!(
            "journal covers {cells:?} cells, matrix has {}",
            matrix.cells().len()
        )));
    }
    Ok(())
}

/// Renders one complete v2 entry line (without the trailing newline).
fn entry_line(seq: u64, index: u64, outcome: &Result<MachineRunStats, CellFailure>) -> String {
    let body = entry_json(index, outcome).render_compact();
    let crc = crc32(format!("{seq}:{body}").as_bytes());
    format!("{{\"seq\":{seq},\"crc\":{crc},\"body\":{body}}}")
}

/// Parses and verifies one v2 entry line: wrapper shape, CRC over the
/// re-rendered body (byte-identical by the `Json` round-trip property),
/// then the body itself. Returns `(seq, cell index, outcome)`.
fn parse_entry_line(
    line: &str,
    cell_count: u64,
) -> Result<(u64, u64, Result<MachineRunStats, CellFailure>), String> {
    let wrapper = Json::parse(line).map_err(|e| format!("malformed entry: {e}"))?;
    let seq = wrapper
        .get("seq")
        .and_then(Json::as_u64)
        .ok_or("missing seq")?;
    let crc = wrapper
        .get("crc")
        .and_then(Json::as_u64)
        .ok_or("missing crc")?;
    let body = wrapper.get("body").ok_or("missing body")?;
    let computed = u64::from(crc32(format!("{seq}:{}", body.render_compact()).as_bytes()));
    if crc != computed {
        return Err(format!("crc mismatch (stored {crc}, computed {computed})"));
    }
    let (index, outcome) = parse_entry(body, cell_count)?;
    Ok((seq, index, outcome))
}

fn entry_json(index: u64, outcome: &Result<MachineRunStats, CellFailure>) -> Json {
    let mut entry = Json::object();
    entry.set("cell", Json::U64(index));
    match outcome {
        Ok(machine) => {
            entry.set("ok", Json::Bool(true));
            entry.set("stats", stats_to_json(&machine.global));
            // Solo cells journal only the rollup; the per-tenant vector
            // is reconstructed on load. Keeps pre-tenant journals valid.
            if machine.per_tenant.len() > 1 {
                entry.set(
                    "tenants",
                    Json::Array(machine.per_tenant.iter().map(stats_to_json).collect()),
                );
            }
            // Same conditional-compat rule as the tenants array: the
            // outcomes key appears only when the machine killed someone,
            // so fault-free entries match pre-outcome journals exactly.
            if machine.outcomes.iter().any(|o| o.is_killed()) {
                entry.set(
                    "outcomes",
                    Json::Array(machine.outcomes.iter().map(outcome_json).collect()),
                );
            }
        }
        Err(failure) => {
            entry.set("ok", Json::Bool(false));
            entry.set("cause", Json::Str(failure.cause.label().to_string()));
            entry.set("attempts", Json::U64(u64::from(failure.attempts)));
            entry.set("message", Json::Str(failure.message.clone()));
        }
    }
    entry
}

fn parse_entry(
    entry: &Json,
    cell_count: u64,
) -> Result<(u64, Result<MachineRunStats, CellFailure>), String> {
    let index = entry
        .get("cell")
        .and_then(Json::as_u64)
        .ok_or("missing cell index")?;
    if index >= cell_count {
        return Err(format!("cell index {index} out of range"));
    }
    let ok = entry
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or("missing ok")?;
    let outcome = if ok {
        let global = stats_from_json(entry.get("stats").ok_or("missing stats")?)?;
        let per_tenant = match entry.get("tenants") {
            Some(Json::Array(items)) => items
                .iter()
                .map(stats_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("tenants is not an array".to_string()),
            None => vec![global.clone()],
        };
        let outcomes = match entry.get("outcomes") {
            Some(Json::Array(items)) => items
                .iter()
                .map(outcome_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("outcomes is not an array".to_string()),
            // Entries journaled before outcomes existed — or by any
            // fault-free run since — report every tenant as completed.
            None => vec![TenantOutcome::Completed; per_tenant.len()],
        };
        Ok(MachineRunStats {
            global,
            per_tenant,
            outcomes,
        })
    } else {
        let cause = entry
            .get("cause")
            .and_then(Json::as_str)
            .and_then(FailureCause::from_label)
            .ok_or("missing or unknown cause")?;
        let attempts = entry
            .get("attempts")
            .and_then(Json::as_u64)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or("missing attempts")?;
        let message = entry
            .get("message")
            .and_then(Json::as_str)
            .ok_or("missing message")?
            .to_string();
        Err(CellFailure {
            cause,
            attempts,
            message,
        })
    };
    Ok((index, outcome))
}

/// Renders one tenant outcome. Shared with the report serializer so a
/// kill reads identically in the journal and the aggregated document.
pub(crate) fn outcome_json(outcome: &TenantOutcome) -> Json {
    let mut obj = Json::object();
    match outcome {
        TenantOutcome::Completed => {
            obj.set("outcome", Json::Str("completed".to_string()));
        }
        TenantOutcome::Killed { cause, at_event } => {
            obj.set("outcome", Json::Str("killed".to_string()));
            obj.set("cause", Json::Str(cause.label().to_string()));
            obj.set("at_event", Json::U64(*at_event));
        }
    }
    obj
}

fn outcome_from_json(obj: &Json) -> Result<TenantOutcome, String> {
    match obj.get("outcome").and_then(Json::as_str) {
        Some("completed") => Ok(TenantOutcome::Completed),
        Some("killed") => {
            let cause = obj
                .get("cause")
                .and_then(Json::as_str)
                .and_then(TenantFaultCause::from_label)
                .ok_or("missing or unknown kill cause")?;
            let at_event = u64_field(obj, "at_event")?;
            Ok(TenantOutcome::Killed { cause, at_event })
        }
        other => Err(format!("unknown outcome {other:?}")),
    }
}

// --- full RunStats codec ------------------------------------------------
//
// The report's stats block drops fields the figures never read; a resumed
// run must rebuild the *exact* RunStats, so the journal carries all of
// them. u64 fields round-trip trivially; f64 fields round-trip exactly
// because the writer uses Rust's shortest-round-trip formatting.

fn stats_to_json(stats: &RunStats) -> Json {
    let mut obj = Json::object();
    obj.set("name", Json::Str(stats.name.clone()));
    let p = &stats.profile;
    let mut profile = Json::object();
    profile.set("name", Json::Str(p.name.clone()));
    profile.set("base_cpi", Json::F64(p.base_cpi));
    profile.set("insts_per_access", Json::F64(p.insts_per_access));
    profile.set("l1_miss_criticality", Json::F64(p.l1_miss_criticality));
    profile.set("walk_savable", Json::F64(p.walk_savable));
    profile.set("smt_slowdown", Json::F64(p.smt_slowdown));
    obj.set("profile", profile);
    obj.set("mem", tlb_stats_to_json(&stats.mem));
    obj.set("walks", Json::U64(stats.walks));
    obj.set("walk_refs", Json::U64(stats.walk_refs));
    obj.set("alias_extras", Json::U64(stats.alias_extras));
    obj.set("ad_updates", Json::U64(stats.ad_updates));
    let o = &stats.os;
    let mut os = Json::object();
    os.set("mmaps", Json::U64(o.mmaps));
    os.set("munmaps", Json::U64(o.munmaps));
    os.set("faults", Json::U64(o.faults));
    os.set("promotions", Json::U64(o.promotions));
    os.set("reservations_created", Json::U64(o.reservations_created));
    os.set("fallback_4k", Json::U64(o.fallback_4k));
    os.set("shootdowns", Json::U64(o.shootdowns));
    os.set("cow_faults", Json::U64(o.cow_faults));
    os.set("cow_bytes_copied", Json::U64(o.cow_bytes_copied));
    os.set("op_cycles", Json::U64(o.op_cycles));
    os.set("oom_fallbacks", Json::U64(o.oom_fallbacks));
    os.set("compaction_aborts", Json::U64(o.compaction_aborts));
    os.set("shootdowns_retried", Json::U64(o.shootdowns_retried));
    obj.set("os", os);
    obj.set("instructions", Json::U64(stats.instructions));
    obj.set("full_instructions", Json::U64(stats.full_instructions));
    obj.set("full_mem", tlb_stats_to_json(&stats.full_mem));
    obj.set("full_walk_refs", Json::U64(stats.full_walk_refs));
    let mut census = Json::object();
    for (order, pages) in &stats.page_census {
        census.set(&format!("{}", order.get()), Json::U64(*pages));
    }
    obj.set("page_census", census);
    obj.set("resident_bytes", Json::U64(stats.resident_bytes));
    obj.set("touched_bytes", Json::U64(stats.touched_bytes));
    let (pde, pdpte, pml4e) = stats.mmu_cache_hits;
    obj.set(
        "mmu_cache_hits",
        Json::Array(vec![Json::U64(pde), Json::U64(pdpte), Json::U64(pml4e)]),
    );
    let hw = &stats.hw_faults;
    let mut hw_obj = Json::object();
    hw_obj.set("walk_restarts", Json::U64(hw.walk_restarts));
    hw_obj.set("alias_install_retries", Json::U64(hw.alias_install_retries));
    hw_obj.set("mmu_cache_fill_drops", Json::U64(hw.mmu_cache_fill_drops));
    hw_obj.set("tlb_fill_drops", Json::U64(hw.tlb_fill_drops));
    hw_obj.set("tlb_evict_abandons", Json::U64(hw.tlb_evict_abandons));
    hw_obj.set("stlb_probe_misses", Json::U64(hw.stlb_probe_misses));
    obj.set("hw_faults", hw_obj);
    obj
}

fn tlb_stats_to_json(mem: &TlbStats) -> Json {
    let mut obj = Json::object();
    obj.set("accesses", Json::U64(mem.accesses));
    obj.set("l1_hits", Json::U64(mem.l1_hits));
    obj.set("stlb_hits", Json::U64(mem.stlb_hits));
    obj.set("range_hits", Json::U64(mem.range_hits));
    obj.set("l2_misses", Json::U64(mem.l2_misses));
    obj
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing u64 field {key:?}"))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing f64 field {key:?}"))
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn tlb_stats_from_json(obj: &Json) -> Result<TlbStats, String> {
    Ok(TlbStats {
        accesses: u64_field(obj, "accesses")?,
        l1_hits: u64_field(obj, "l1_hits")?,
        stlb_hits: u64_field(obj, "stlb_hits")?,
        range_hits: u64_field(obj, "range_hits")?,
        l2_misses: u64_field(obj, "l2_misses")?,
    })
}

fn stats_from_json(obj: &Json) -> Result<RunStats, String> {
    let profile_obj = obj.get("profile").ok_or("missing profile")?;
    let profile = WorkloadProfile {
        name: str_field(profile_obj, "name")?.to_string(),
        base_cpi: f64_field(profile_obj, "base_cpi")?,
        insts_per_access: f64_field(profile_obj, "insts_per_access")?,
        l1_miss_criticality: f64_field(profile_obj, "l1_miss_criticality")?,
        walk_savable: f64_field(profile_obj, "walk_savable")?,
        smt_slowdown: f64_field(profile_obj, "smt_slowdown")?,
    };
    let os_obj = obj.get("os").ok_or("missing os")?;
    let os = OsStats {
        mmaps: u64_field(os_obj, "mmaps")?,
        munmaps: u64_field(os_obj, "munmaps")?,
        faults: u64_field(os_obj, "faults")?,
        promotions: u64_field(os_obj, "promotions")?,
        reservations_created: u64_field(os_obj, "reservations_created")?,
        fallback_4k: u64_field(os_obj, "fallback_4k")?,
        shootdowns: u64_field(os_obj, "shootdowns")?,
        cow_faults: u64_field(os_obj, "cow_faults")?,
        cow_bytes_copied: u64_field(os_obj, "cow_bytes_copied")?,
        op_cycles: u64_field(os_obj, "op_cycles")?,
        oom_fallbacks: u64_field(os_obj, "oom_fallbacks")?,
        compaction_aborts: u64_field(os_obj, "compaction_aborts")?,
        shootdowns_retried: u64_field(os_obj, "shootdowns_retried")?,
    };
    let mut page_census = std::collections::BTreeMap::new();
    if let Json::Object(pairs) = obj.get("page_census").ok_or("missing page_census")? {
        for (key, value) in pairs {
            let order: u8 = key.parse().map_err(|_| format!("bad order key {key:?}"))?;
            let order = PageOrder::new(order).map_err(|e| e.to_string())?;
            let pages = value.as_u64().ok_or("bad census count")?;
            page_census.insert(order, pages);
        }
    } else {
        return Err("page_census is not an object".to_string());
    }
    let hits = match obj.get("mmu_cache_hits") {
        Some(Json::Array(items)) if items.len() == 3 => {
            let mut it = items.iter().map(Json::as_u64);
            let mut next = || it.next().flatten().ok_or("bad mmu_cache_hits entry");
            (next()?, next()?, next()?)
        }
        _ => return Err("mmu_cache_hits is not a 3-array".to_string()),
    };
    let hw_obj = obj.get("hw_faults").ok_or("missing hw_faults")?;
    let hw_faults = HwFaultStats {
        walk_restarts: u64_field(hw_obj, "walk_restarts")?,
        alias_install_retries: u64_field(hw_obj, "alias_install_retries")?,
        mmu_cache_fill_drops: u64_field(hw_obj, "mmu_cache_fill_drops")?,
        tlb_fill_drops: u64_field(hw_obj, "tlb_fill_drops")?,
        tlb_evict_abandons: u64_field(hw_obj, "tlb_evict_abandons")?,
        stlb_probe_misses: u64_field(hw_obj, "stlb_probe_misses")?,
    };
    Ok(RunStats {
        name: str_field(obj, "name")?.to_string(),
        profile,
        mem: tlb_stats_from_json(obj.get("mem").ok_or("missing mem")?)?,
        walks: u64_field(obj, "walks")?,
        walk_refs: u64_field(obj, "walk_refs")?,
        alias_extras: u64_field(obj, "alias_extras")?,
        ad_updates: u64_field(obj, "ad_updates")?,
        os,
        instructions: u64_field(obj, "instructions")?,
        full_instructions: u64_field(obj, "full_instructions")?,
        full_mem: tlb_stats_from_json(obj.get("full_mem").ok_or("missing full_mem")?)?,
        full_walk_refs: u64_field(obj, "full_walk_refs")?,
        page_census,
        resident_bytes: u64_field(obj, "resident_bytes")?,
        touched_bytes: u64_field(obj, "touched_bytes")?,
        mmu_cache_hits: hits,
        hw_faults,
    })
}

#[cfg(test)]
mod tests {
    use super::super::io::{FaultyIo, FaultyIoConfig, RealIo};
    use super::*;
    use crate::config::Mechanism;
    use crate::experiment::spec::ExperimentSpec;
    use proptest::prelude::*;
    use std::fs::OpenOptions;
    use tps_wl::SuiteScale;

    fn matrix() -> ExperimentMatrix {
        ExperimentSpec::new()
            .bench("gups")
            .mechanisms([Mechanism::Thp, Mechanism::Tps])
            .scale(SuiteScale::Test)
            .seed(9)
            .build()
            .unwrap()
    }

    fn sample_stats() -> RunStats {
        let m = matrix();
        let report = m.run();
        report
            .stats("gups", Mechanism::Tps)
            .expect("test-scale gups runs")
            .clone()
    }

    fn cached_stats() -> &'static RunStats {
        static STATS: std::sync::OnceLock<RunStats> = std::sync::OnceLock::new();
        STATS.get_or_init(sample_stats)
    }

    /// Wraps a rollup as the solo-machine outcome cells journal.
    fn solo(stats: RunStats) -> MachineRunStats {
        MachineRunStats::solo_completed(stats)
    }

    #[test]
    fn stats_round_trip_exactly() {
        let stats = sample_stats();
        let json = stats_to_json(&stats).render_compact();
        let back = stats_from_json(&Json::parse(&json).unwrap()).unwrap();
        // Re-serializing the reconstruction is byte-identical, which is
        // the property resume (and the entry CRC check) rests on.
        assert_eq!(stats_to_json(&back).render_compact(), json);
        assert_eq!(back.mem, stats.mem);
        assert_eq!(back.page_census, stats.page_census);
        assert_eq!(back.hw_faults, stats.hw_faults);
        assert_eq!(
            back.profile.base_cpi.to_bits(),
            stats.profile.base_cpi.to_bits()
        );
    }

    #[test]
    fn multi_tenant_entries_round_trip_per_tenant_stats() {
        let dir = std::env::temp_dir().join("tps-ckpt-test-tenants");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let m = matrix();
        let mut a = cached_stats().clone();
        a.walks += 1;
        let mut b = cached_stats().clone();
        b.os.faults += 7;
        let outcome = MachineRunStats {
            global: cached_stats().clone(),
            per_tenant: vec![a.clone(), b.clone()],
            outcomes: vec![TenantOutcome::Completed; 2],
        };
        {
            let writer = CheckpointWriter::create(&RealIo, &path, &m, false).unwrap();
            writer.record(0, &Ok(outcome.clone())).unwrap();
            writer.finish().unwrap();
        }
        let loaded = load(&path, &m, false).unwrap();
        let replayed = loaded.done[&0].as_ref().unwrap();
        assert_eq!(replayed.per_tenant.len(), 2);
        assert_eq!(replayed.per_tenant[0].walks, a.walks);
        assert_eq!(replayed.per_tenant[1].os.faults, b.os.faults);
        assert_eq!(
            stats_to_json(&replayed.global).render_compact(),
            stats_to_json(&outcome.global).render_compact()
        );
        // An entry with the tenants array stripped — a pre-tenant journal
        // line — still loads, reconstructing per_tenant from the rollup.
        let text = std::fs::read_to_string(&path).unwrap();
        let entry = text.lines().nth(1).unwrap();
        assert!(entry.contains("\"tenants\":"), "two tenants are journaled");
        assert!(
            !entry.contains("\"outcomes\":"),
            "a fault-free entry journals no outcomes key"
        );
        assert_eq!(
            replayed.outcomes,
            vec![TenantOutcome::Completed; 2],
            "missing outcomes key loads as all-completed"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_outcomes_round_trip_through_the_journal() {
        let dir = std::env::temp_dir().join("tps-ckpt-test-killed");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let m = matrix();
        let outcome = MachineRunStats {
            global: cached_stats().clone(),
            per_tenant: vec![cached_stats().clone(), cached_stats().clone()],
            outcomes: vec![
                TenantOutcome::Killed {
                    cause: TenantFaultCause::CapExceeded,
                    at_event: 37,
                },
                TenantOutcome::Completed,
            ],
        };
        {
            let writer = CheckpointWriter::create(&RealIo, &path, &m, false).unwrap();
            writer.record(0, &Ok(outcome.clone())).unwrap();
            writer.finish().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let entry = text.lines().nth(1).unwrap();
        assert!(entry.contains("\"outcomes\":"), "{entry}");
        assert!(entry.contains("\"cause\":\"cap-exceeded\""), "{entry}");
        let loaded = load(&path, &m, false).unwrap();
        let replayed = loaded.done[&0].as_ref().unwrap();
        assert_eq!(replayed.outcomes, outcome.outcomes);
        assert_eq!(
            replayed.outcome(0),
            TenantOutcome::Killed {
                cause: TenantFaultCause::CapExceeded,
                at_event: 37,
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_writes_and_loads() {
        let dir = std::env::temp_dir().join("tps-ckpt-test-basic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let m = matrix();
        let stats = cached_stats().clone();
        let failure = CellFailure {
            cause: FailureCause::Panic,
            attempts: 3,
            message: "worker thread panicked: cell (gups, THP): boom".to_string(),
        };
        {
            let writer = CheckpointWriter::create(&RealIo, &path, &m, false).unwrap();
            writer.record(1, &Ok(solo(stats.clone()))).unwrap();
            writer.record(0, &Err(failure.clone())).unwrap();
            writer.finish().unwrap();
        }
        let loaded = load(&path, &m, false).unwrap();
        assert_eq!(loaded.done.len(), 2);
        assert_eq!(loaded.next_seq, 2, "two entries consumed seqs 0 and 1");
        assert_eq!(loaded.dropped, 0);
        assert_eq!(
            loaded.clean_len,
            std::fs::metadata(&path).unwrap().len(),
            "a clean journal has no torn tail"
        );
        assert_eq!(loaded.done[&0].as_ref().unwrap_err(), &failure);
        let replayed = loaded.done[&1].as_ref().unwrap();
        assert_eq!(
            stats_to_json(&replayed.global).render_compact(),
            stats_to_json(&stats).render_compact()
        );
        assert_eq!(
            replayed.per_tenant.len(),
            1,
            "a solo entry loads with its rollup as the only tenant"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_append_is_fsynced_and_finish_syncs_again() {
        let dir = std::env::temp_dir().join("tps-ckpt-test-fsync");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let m = matrix();
        let io = FaultyIo::new(FaultyIoConfig::default());
        let writer = CheckpointWriter::create(&io, &path, &m, false).unwrap();
        assert_eq!(io.syncs(), 1, "header is synced");
        writer
            .record(
                0,
                &Err(CellFailure {
                    cause: FailureCause::Fault,
                    attempts: 1,
                    message: "x".to_string(),
                }),
            )
            .unwrap();
        assert_eq!(io.syncs(), 2, "each appended entry is synced");
        writer.finish().unwrap();
        assert_eq!(io.syncs(), 3, "finish syncs before close");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_line_is_discarded_and_truncated_on_append() {
        let dir = std::env::temp_dir().join("tps-ckpt-test-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let m = matrix();
        {
            let writer = CheckpointWriter::create(&RealIo, &path, &m, false).unwrap();
            writer
                .record(
                    0,
                    &Err(CellFailure {
                        cause: FailureCause::Fault,
                        attempts: 1,
                        message: "x".to_string(),
                    }),
                )
                .unwrap();
        }
        let clean = std::fs::metadata(&path).unwrap().len();
        // Simulate a kill mid-write: append half an entry.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"seq\":1,\"crc\":123,\"body\":{\"cell\":1,\"ok\":tr")
            .unwrap();
        drop(f);
        let loaded = load(&path, &m, false).unwrap();
        assert_eq!(loaded.done.len(), 1, "torn tail dropped, intact entry kept");
        assert!(loaded.done.contains_key(&0));
        assert_eq!(loaded.next_seq, 1);
        assert_eq!(loaded.clean_len, clean, "clean prefix excludes the tail");
        // Appending truncates the wreckage before writing the next entry.
        {
            let writer = CheckpointWriter::append_to(
                &RealIo,
                &path,
                loaded.next_seq,
                Some(loaded.clean_len),
            )
            .unwrap();
            writer.record(1, &Ok(solo(cached_stats().clone()))).unwrap();
        }
        let reloaded = load(&path, &m, false).unwrap();
        assert_eq!(reloaded.done.len(), 2, "resumed journal is fully clean");
        assert_eq!(reloaded.next_seq, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn midfile_corruption_is_detected_and_salvageable() {
        let dir = std::env::temp_dir().join("tps-ckpt-test-midfile");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let m = matrix();
        {
            let writer = CheckpointWriter::create(&RealIo, &path, &m, false).unwrap();
            writer.record(0, &Ok(solo(cached_stats().clone()))).unwrap();
            writer.record(1, &Ok(solo(cached_stats().clone()))).unwrap();
        }
        // Flip one byte in the middle of the first entry's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let entry_end = header_end
            + bytes[header_end..]
                .iter()
                .position(|&b| b == b'\n')
                .unwrap();
        let victim = header_end + (entry_end - header_end) / 2;
        bytes[victim] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();

        let err = load(&path, &m, false).unwrap_err();
        assert!(matches!(err, TpsError::CheckpointCorrupt { .. }), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");

        let salvaged = load(&path, &m, true).unwrap();
        assert_eq!(salvaged.dropped, 1, "the damaged entry is dropped");
        assert_eq!(salvaged.done.len(), 1, "the intact entry survives");
        assert!(salvaged.done.contains_key(&1));
        assert_eq!(salvaged.next_seq, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nonmonotone_sequence_reads_as_corruption() {
        let dir = std::env::temp_dir().join("tps-ckpt-test-seq");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let m = matrix();
        let failure = Err(CellFailure {
            cause: FailureCause::Panic,
            attempts: 1,
            message: "x".to_string(),
        });
        let doc = format!(
            "{}\n{}\n{}\n",
            header_json(&m).render_compact(),
            entry_line(1, 0, &failure),
            entry_line(1, 1, &failure), // replayed sequence number
        );
        std::fs::write(&path, doc).unwrap();
        let err = load(&path, &m, false).unwrap_err();
        assert!(matches!(err, TpsError::CheckpointCorrupt { .. }), "{err}");
        assert!(err.to_string().contains("not increasing"), "{err}");
        let salvaged = load(&path, &m, true).unwrap();
        assert_eq!(salvaged.dropped, 1);
        assert_eq!(salvaged.next_seq, 2, "seq gaps stay legal after salvage");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_to_clobber_a_journal_with_entries() {
        let dir = std::env::temp_dir().join("tps-ckpt-test-clobber");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let m = matrix();
        {
            let writer = CheckpointWriter::create(&RealIo, &path, &m, false).unwrap();
            writer
                .record(
                    0,
                    &Err(CellFailure {
                        cause: FailureCause::Panic,
                        attempts: 1,
                        message: "x".to_string(),
                    }),
                )
                .unwrap();
        }
        let before = std::fs::read(&path).unwrap();
        let err = CheckpointWriter::create(&RealIo, &path, &m, false).unwrap_err();
        assert!(err.to_string().contains("--force-checkpoint"), "{err}");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            before,
            "refused create must not touch the journal"
        );
        // A journal of a *different* spec is refused even when empty of
        // entries; --force-checkpoint overrides both refusals.
        let other = ExperimentSpec::new()
            .bench("gups")
            .mechanisms([Mechanism::Thp, Mechanism::Tps])
            .scale(SuiteScale::Test)
            .seed(10)
            .build()
            .unwrap();
        let err = CheckpointWriter::create(&RealIo, &path, &other, false).unwrap_err();
        assert!(
            err.to_string().contains("different experiment spec"),
            "{err}"
        );
        CheckpointWriter::create(&RealIo, &path, &m, true).unwrap();
        let reloaded = load(&path, &m, false).unwrap();
        assert_eq!(reloaded.done.len(), 0, "forced create truncated");
        // Recreating over a header-only journal of the same spec is fine.
        CheckpointWriter::create(&RealIo, &path, &m, false).unwrap();
        // A random non-journal file is protected too.
        std::fs::write(&path, "important notes, definitely not a journal\n").unwrap();
        let err = CheckpointWriter::create(&RealIo, &path, &m, false).unwrap_err();
        assert!(
            err.to_string().contains("not a checkpoint journal"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_spec_is_rejected() {
        let dir = std::env::temp_dir().join("tps-ckpt-test-mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let m = matrix();
        CheckpointWriter::create(&RealIo, &path, &m, false).unwrap();
        let other = ExperimentSpec::new()
            .bench("gups")
            .mechanisms([Mechanism::Thp, Mechanism::Tps])
            .scale(SuiteScale::Test)
            .seed(10) // different seed → different fingerprint
            .build()
            .unwrap();
        let err = load(&path, &other, false).unwrap_err();
        assert!(matches!(err, TpsError::Checkpoint { .. }), "{err}");
        assert!(err.to_string().contains("different experiment spec"));
        // Not-a-journal files are rejected too.
        std::fs::write(&path, "{\"schema\":\"nope\"}\n").unwrap();
        assert!(load(&path, &m, false).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]
        #[test]
        fn single_byte_corruption_is_detected_or_irrelevant(
            seq in 0u64..10_000,
            kind in 0u64..2,
            attempts in 1u64..9,
            walks in 0u64..u64::MAX,
            message in prop::sample::select(vec![
                "plain",
                "with \"quotes\" and \\ backslash",
                "newline\nand tab\tinside",
                "unicode π ✓ ∞",
                "",
            ]),
            pos_draw in 0u64..u64::MAX,
            xor_draw in 0u64..u64::MAX,
        ) {
            let cell = seq % 2;
            let outcome = if kind == 0 {
                let mut stats = cached_stats().clone();
                stats.walks = walks; // vary one journaled field per case
                Ok(solo(stats))
            } else {
                Err(CellFailure {
                    cause: FailureCause::Panic,
                    attempts: attempts as u32,
                    message: message.to_string(),
                })
            };
            let line = entry_line(seq, cell, &outcome);
            let reference = entry_json(cell, &outcome).render_compact();
            // Sanity: the clean line parses back to the same entry.
            let (s, i, o) = parse_entry_line(&line, 2).expect("clean line parses");
            prop_assert_eq!(s, seq);
            prop_assert_eq!(i, cell);
            prop_assert_eq!(&entry_json(i, &o).render_compact(), &reference);

            let mut bytes = line.clone().into_bytes();
            let pos = (pos_draw % bytes.len() as u64) as usize;
            let xor = (xor_draw % 255 + 1) as u8; // never a no-op flip
            bytes[pos] ^= xor;
            match String::from_utf8(bytes) {
                // Invalid UTF-8 fails read_to_string at load: detected.
                Err(_) => {}
                Ok(corrupted) => {
                    // A corruption byte may be '\n', splitting the line;
                    // every resulting piece must either fail verification
                    // or decode to exactly the original entry.
                    for piece in corrupted.split('\n').filter(|p| !p.is_empty()) {
                        if let Ok((s, i, o)) = parse_entry_line(piece, 2) {
                            prop_assert_eq!(s, seq, "undetected seq change");
                            prop_assert_eq!(i, cell, "undetected cell change");
                            prop_assert_eq!(
                                &entry_json(i, &o).render_compact(),
                                &reference,
                                "undetected body change"
                            );
                        }
                    }
                }
            }
        }
    }
}
