//! Append-only checkpoint journal for resumable matrix runs.
//!
//! The journal is line-oriented: a versioned header line followed by one
//! compact-JSON entry per completed cell, appended (and flushed) the
//! moment the cell finishes. A run killed mid-flight therefore leaves a
//! valid journal of everything it completed; `--resume` replays those
//! cells from the journal and only executes the rest. A final possibly
//! truncated line (the victim of the kill) is tolerated and discarded.
//!
//! Entries round-trip the **full** [`RunStats`] — not the abridged stats
//! block of the report — so a resumed run's aggregated report, including
//! derived metrics and the rendered JSON document, is byte-identical to
//! an uninterrupted run's.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use tps_core::{PageOrder, TpsError};
use tps_os::OsStats;
use tps_tlb::TlbStats;
use tps_wl::WorkloadProfile;

use crate::stats::{HwFaultStats, RunStats};

use super::json::Json;
use super::report::{CellFailure, FailureCause};
use super::spec::ExperimentMatrix;

/// The `"schema"` marker on a journal's header line.
pub const CHECKPOINT_SCHEMA: &str = "tps-experiment-checkpoint";

/// Version of the journal layout. Bump on any entry-shape change: resume
/// refuses other versions rather than guessing.
pub const CHECKPOINT_VERSION: u64 = 1;

/// One journaled outcome, keyed by the cell's stable index.
pub(crate) type ResumeMap = BTreeMap<u64, Result<RunStats, CellFailure>>;

/// Serializer/appender for the journal. Shared by the worker pool behind
/// a mutex so each entry is written (and flushed) as one atomic line.
pub(crate) struct CheckpointWriter {
    file: Mutex<BufWriter<File>>,
}

impl CheckpointWriter {
    /// Creates a fresh journal at `path`, truncating any previous file,
    /// and writes the header line.
    pub(crate) fn create(path: &Path, matrix: &ExperimentMatrix) -> Result<Self, TpsError> {
        let file = File::create(path)
            .map_err(|e| TpsError::checkpoint(format!("cannot create {}: {e}", path.display())))?;
        let writer = CheckpointWriter {
            file: Mutex::new(BufWriter::new(file)),
        };
        writer.write_line(&header_json(matrix).render_compact())?;
        Ok(writer)
    }

    /// Reopens an existing journal for appending (resume continues
    /// journaling into the same file). The header must already be there.
    pub(crate) fn append_to(path: &Path) -> Result<Self, TpsError> {
        let file = OpenOptions::new().append(true).open(path).map_err(|e| {
            TpsError::checkpoint(format!("cannot append to {}: {e}", path.display()))
        })?;
        Ok(CheckpointWriter {
            file: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Appends one completed cell. Flushes so a subsequent crash cannot
    /// lose the entry.
    pub(crate) fn record(
        &self,
        index: u64,
        outcome: &Result<RunStats, CellFailure>,
    ) -> Result<(), TpsError> {
        self.write_line(&entry_json(index, outcome).render_compact())
    }

    fn write_line(&self, line: &str) -> Result<(), TpsError> {
        let mut file = match self.file.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        file.write_all(line.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.flush())
            .map_err(|e| TpsError::checkpoint(format!("journal write failed: {e}")))
    }
}

/// Loads a journal and returns the completed cells, validating that it
/// belongs to `matrix` (schema, version, spec fingerprint, cell count).
///
/// # Errors
///
/// [`TpsError::Checkpoint`] on I/O failure, a malformed header, or a
/// journal written for a different spec. A truncated or corrupt **final**
/// entry line is discarded silently — that is the expected wreckage of a
/// killed run — but corruption earlier in the file is an error.
pub(crate) fn load(path: &Path, matrix: &ExperimentMatrix) -> Result<ResumeMap, TpsError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| TpsError::checkpoint(format!("cannot read {}: {e}", path.display())))?;
    let mut lines = text.split('\n');
    let header_line = lines
        .next()
        .filter(|l| !l.is_empty())
        .ok_or_else(|| TpsError::checkpoint("journal header missing"))?;
    let header = Json::parse(header_line)
        .map_err(|e| TpsError::checkpoint(format!("malformed journal header: {e}")))?;
    check_header(&header, matrix)?;

    let mut done = ResumeMap::new();
    let lines: Vec<&str> = lines.filter(|l| !l.is_empty()).collect();
    for (i, line) in lines.iter().enumerate() {
        let last = i + 1 == lines.len();
        let entry = match Json::parse(line) {
            Ok(entry) => entry,
            Err(_) if last => break, // torn final line from a killed run
            Err(e) => {
                return Err(TpsError::checkpoint(format!(
                    "corrupt journal entry {}: {e}",
                    i + 1
                )))
            }
        };
        match parse_entry(&entry, matrix.cells().len() as u64) {
            Ok((index, outcome)) => {
                done.insert(index, outcome);
            }
            Err(_) if last => break,
            Err(e) => {
                return Err(TpsError::checkpoint(format!(
                    "corrupt journal entry {}: {e}",
                    i + 1
                )))
            }
        }
    }
    Ok(done)
}

fn header_json(matrix: &ExperimentMatrix) -> Json {
    let mut header = Json::object();
    header.set("schema", Json::Str(CHECKPOINT_SCHEMA.to_string()));
    header.set("version", Json::U64(CHECKPOINT_VERSION));
    header.set("fingerprint", Json::U64(matrix.spec().fingerprint()));
    header.set("cells", Json::U64(matrix.cells().len() as u64));
    header
}

fn check_header(header: &Json, matrix: &ExperimentMatrix) -> Result<(), TpsError> {
    let schema = header.get("schema").and_then(Json::as_str);
    if schema != Some(CHECKPOINT_SCHEMA) {
        return Err(TpsError::checkpoint(format!(
            "not a checkpoint journal (schema {schema:?})"
        )));
    }
    let version = header.get("version").and_then(Json::as_u64);
    if version != Some(CHECKPOINT_VERSION) {
        return Err(TpsError::checkpoint(format!(
            "unsupported journal version {version:?} (expected {CHECKPOINT_VERSION})"
        )));
    }
    let fingerprint = header.get("fingerprint").and_then(Json::as_u64);
    if fingerprint != Some(matrix.spec().fingerprint()) {
        return Err(TpsError::checkpoint(
            "journal was written for a different experiment spec",
        ));
    }
    let cells = header.get("cells").and_then(Json::as_u64);
    if cells != Some(matrix.cells().len() as u64) {
        return Err(TpsError::checkpoint(format!(
            "journal covers {cells:?} cells, matrix has {}",
            matrix.cells().len()
        )));
    }
    Ok(())
}

fn entry_json(index: u64, outcome: &Result<RunStats, CellFailure>) -> Json {
    let mut entry = Json::object();
    entry.set("cell", Json::U64(index));
    match outcome {
        Ok(stats) => {
            entry.set("ok", Json::Bool(true));
            entry.set("stats", stats_to_json(stats));
        }
        Err(failure) => {
            entry.set("ok", Json::Bool(false));
            entry.set("cause", Json::Str(failure.cause.label().to_string()));
            entry.set("attempts", Json::U64(u64::from(failure.attempts)));
            entry.set("message", Json::Str(failure.message.clone()));
        }
    }
    entry
}

fn parse_entry(
    entry: &Json,
    cell_count: u64,
) -> Result<(u64, Result<RunStats, CellFailure>), String> {
    let index = entry
        .get("cell")
        .and_then(Json::as_u64)
        .ok_or("missing cell index")?;
    if index >= cell_count {
        return Err(format!("cell index {index} out of range"));
    }
    let ok = entry
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or("missing ok")?;
    let outcome = if ok {
        Ok(stats_from_json(entry.get("stats").ok_or("missing stats")?)?)
    } else {
        let cause = entry
            .get("cause")
            .and_then(Json::as_str)
            .and_then(FailureCause::from_label)
            .ok_or("missing or unknown cause")?;
        let attempts = entry
            .get("attempts")
            .and_then(Json::as_u64)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or("missing attempts")?;
        let message = entry
            .get("message")
            .and_then(Json::as_str)
            .ok_or("missing message")?
            .to_string();
        Err(CellFailure {
            cause,
            attempts,
            message,
        })
    };
    Ok((index, outcome))
}

// --- full RunStats codec ------------------------------------------------
//
// The report's stats block drops fields the figures never read; a resumed
// run must rebuild the *exact* RunStats, so the journal carries all of
// them. u64 fields round-trip trivially; f64 fields round-trip exactly
// because the writer uses Rust's shortest-round-trip formatting.

fn stats_to_json(stats: &RunStats) -> Json {
    let mut obj = Json::object();
    obj.set("name", Json::Str(stats.name.clone()));
    let p = &stats.profile;
    let mut profile = Json::object();
    profile.set("name", Json::Str(p.name.clone()));
    profile.set("base_cpi", Json::F64(p.base_cpi));
    profile.set("insts_per_access", Json::F64(p.insts_per_access));
    profile.set("l1_miss_criticality", Json::F64(p.l1_miss_criticality));
    profile.set("walk_savable", Json::F64(p.walk_savable));
    profile.set("smt_slowdown", Json::F64(p.smt_slowdown));
    obj.set("profile", profile);
    obj.set("mem", tlb_stats_to_json(&stats.mem));
    obj.set("walks", Json::U64(stats.walks));
    obj.set("walk_refs", Json::U64(stats.walk_refs));
    obj.set("alias_extras", Json::U64(stats.alias_extras));
    obj.set("ad_updates", Json::U64(stats.ad_updates));
    let o = &stats.os;
    let mut os = Json::object();
    os.set("mmaps", Json::U64(o.mmaps));
    os.set("munmaps", Json::U64(o.munmaps));
    os.set("faults", Json::U64(o.faults));
    os.set("promotions", Json::U64(o.promotions));
    os.set("reservations_created", Json::U64(o.reservations_created));
    os.set("fallback_4k", Json::U64(o.fallback_4k));
    os.set("shootdowns", Json::U64(o.shootdowns));
    os.set("cow_faults", Json::U64(o.cow_faults));
    os.set("cow_bytes_copied", Json::U64(o.cow_bytes_copied));
    os.set("op_cycles", Json::U64(o.op_cycles));
    os.set("oom_fallbacks", Json::U64(o.oom_fallbacks));
    os.set("compaction_aborts", Json::U64(o.compaction_aborts));
    os.set("shootdowns_retried", Json::U64(o.shootdowns_retried));
    obj.set("os", os);
    obj.set("instructions", Json::U64(stats.instructions));
    obj.set("full_instructions", Json::U64(stats.full_instructions));
    obj.set("full_mem", tlb_stats_to_json(&stats.full_mem));
    obj.set("full_walk_refs", Json::U64(stats.full_walk_refs));
    let mut census = Json::object();
    for (order, pages) in &stats.page_census {
        census.set(&format!("{}", order.get()), Json::U64(*pages));
    }
    obj.set("page_census", census);
    obj.set("resident_bytes", Json::U64(stats.resident_bytes));
    obj.set("touched_bytes", Json::U64(stats.touched_bytes));
    let (pde, pdpte, pml4e) = stats.mmu_cache_hits;
    obj.set(
        "mmu_cache_hits",
        Json::Array(vec![Json::U64(pde), Json::U64(pdpte), Json::U64(pml4e)]),
    );
    let hw = &stats.hw_faults;
    let mut hw_obj = Json::object();
    hw_obj.set("walk_restarts", Json::U64(hw.walk_restarts));
    hw_obj.set("alias_install_retries", Json::U64(hw.alias_install_retries));
    hw_obj.set("mmu_cache_fill_drops", Json::U64(hw.mmu_cache_fill_drops));
    hw_obj.set("tlb_fill_drops", Json::U64(hw.tlb_fill_drops));
    hw_obj.set("tlb_evict_abandons", Json::U64(hw.tlb_evict_abandons));
    hw_obj.set("stlb_probe_misses", Json::U64(hw.stlb_probe_misses));
    obj.set("hw_faults", hw_obj);
    obj
}

fn tlb_stats_to_json(mem: &TlbStats) -> Json {
    let mut obj = Json::object();
    obj.set("accesses", Json::U64(mem.accesses));
    obj.set("l1_hits", Json::U64(mem.l1_hits));
    obj.set("stlb_hits", Json::U64(mem.stlb_hits));
    obj.set("range_hits", Json::U64(mem.range_hits));
    obj.set("l2_misses", Json::U64(mem.l2_misses));
    obj
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing u64 field {key:?}"))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing f64 field {key:?}"))
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn tlb_stats_from_json(obj: &Json) -> Result<TlbStats, String> {
    Ok(TlbStats {
        accesses: u64_field(obj, "accesses")?,
        l1_hits: u64_field(obj, "l1_hits")?,
        stlb_hits: u64_field(obj, "stlb_hits")?,
        range_hits: u64_field(obj, "range_hits")?,
        l2_misses: u64_field(obj, "l2_misses")?,
    })
}

fn stats_from_json(obj: &Json) -> Result<RunStats, String> {
    let profile_obj = obj.get("profile").ok_or("missing profile")?;
    let profile = WorkloadProfile {
        name: str_field(profile_obj, "name")?.to_string(),
        base_cpi: f64_field(profile_obj, "base_cpi")?,
        insts_per_access: f64_field(profile_obj, "insts_per_access")?,
        l1_miss_criticality: f64_field(profile_obj, "l1_miss_criticality")?,
        walk_savable: f64_field(profile_obj, "walk_savable")?,
        smt_slowdown: f64_field(profile_obj, "smt_slowdown")?,
    };
    let os_obj = obj.get("os").ok_or("missing os")?;
    let os = OsStats {
        mmaps: u64_field(os_obj, "mmaps")?,
        munmaps: u64_field(os_obj, "munmaps")?,
        faults: u64_field(os_obj, "faults")?,
        promotions: u64_field(os_obj, "promotions")?,
        reservations_created: u64_field(os_obj, "reservations_created")?,
        fallback_4k: u64_field(os_obj, "fallback_4k")?,
        shootdowns: u64_field(os_obj, "shootdowns")?,
        cow_faults: u64_field(os_obj, "cow_faults")?,
        cow_bytes_copied: u64_field(os_obj, "cow_bytes_copied")?,
        op_cycles: u64_field(os_obj, "op_cycles")?,
        oom_fallbacks: u64_field(os_obj, "oom_fallbacks")?,
        compaction_aborts: u64_field(os_obj, "compaction_aborts")?,
        shootdowns_retried: u64_field(os_obj, "shootdowns_retried")?,
    };
    let mut page_census = std::collections::BTreeMap::new();
    if let Json::Object(pairs) = obj.get("page_census").ok_or("missing page_census")? {
        for (key, value) in pairs {
            let order: u8 = key.parse().map_err(|_| format!("bad order key {key:?}"))?;
            let order = PageOrder::new(order).map_err(|e| e.to_string())?;
            let pages = value.as_u64().ok_or("bad census count")?;
            page_census.insert(order, pages);
        }
    } else {
        return Err("page_census is not an object".to_string());
    }
    let hits = match obj.get("mmu_cache_hits") {
        Some(Json::Array(items)) if items.len() == 3 => {
            let mut it = items.iter().map(Json::as_u64);
            let mut next = || it.next().flatten().ok_or("bad mmu_cache_hits entry");
            (next()?, next()?, next()?)
        }
        _ => return Err("mmu_cache_hits is not a 3-array".to_string()),
    };
    let hw_obj = obj.get("hw_faults").ok_or("missing hw_faults")?;
    let hw_faults = HwFaultStats {
        walk_restarts: u64_field(hw_obj, "walk_restarts")?,
        alias_install_retries: u64_field(hw_obj, "alias_install_retries")?,
        mmu_cache_fill_drops: u64_field(hw_obj, "mmu_cache_fill_drops")?,
        tlb_fill_drops: u64_field(hw_obj, "tlb_fill_drops")?,
        tlb_evict_abandons: u64_field(hw_obj, "tlb_evict_abandons")?,
        stlb_probe_misses: u64_field(hw_obj, "stlb_probe_misses")?,
    };
    Ok(RunStats {
        name: str_field(obj, "name")?.to_string(),
        profile,
        mem: tlb_stats_from_json(obj.get("mem").ok_or("missing mem")?)?,
        walks: u64_field(obj, "walks")?,
        walk_refs: u64_field(obj, "walk_refs")?,
        alias_extras: u64_field(obj, "alias_extras")?,
        ad_updates: u64_field(obj, "ad_updates")?,
        os,
        instructions: u64_field(obj, "instructions")?,
        full_instructions: u64_field(obj, "full_instructions")?,
        full_mem: tlb_stats_from_json(obj.get("full_mem").ok_or("missing full_mem")?)?,
        full_walk_refs: u64_field(obj, "full_walk_refs")?,
        page_census,
        resident_bytes: u64_field(obj, "resident_bytes")?,
        touched_bytes: u64_field(obj, "touched_bytes")?,
        mmu_cache_hits: hits,
        hw_faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mechanism;
    use crate::experiment::spec::ExperimentSpec;
    use tps_wl::SuiteScale;

    fn matrix() -> ExperimentMatrix {
        ExperimentSpec::new()
            .bench("gups")
            .mechanisms([Mechanism::Thp, Mechanism::Tps])
            .scale(SuiteScale::Test)
            .seed(9)
            .build()
            .unwrap()
    }

    fn sample_stats() -> RunStats {
        let m = matrix();
        let report = m.run();
        report
            .stats("gups", Mechanism::Tps)
            .expect("test-scale gups runs")
            .clone()
    }

    #[test]
    fn stats_round_trip_exactly() {
        let stats = sample_stats();
        let json = stats_to_json(&stats).render_compact();
        let back = stats_from_json(&Json::parse(&json).unwrap()).unwrap();
        // Re-serializing the reconstruction is byte-identical, which is
        // the property resume rests on.
        assert_eq!(stats_to_json(&back).render_compact(), json);
        assert_eq!(back.mem, stats.mem);
        assert_eq!(back.page_census, stats.page_census);
        assert_eq!(back.hw_faults, stats.hw_faults);
        assert_eq!(
            back.profile.base_cpi.to_bits(),
            stats.profile.base_cpi.to_bits()
        );
    }

    #[test]
    fn journal_writes_and_loads() {
        let dir = std::env::temp_dir().join("tps-ckpt-test-basic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let m = matrix();
        let stats = sample_stats();
        let failure = CellFailure {
            cause: FailureCause::Panic,
            attempts: 3,
            message: "worker thread panicked: cell (gups, THP): boom".to_string(),
        };
        {
            let writer = CheckpointWriter::create(&path, &m).unwrap();
            writer.record(1, &Ok(stats.clone())).unwrap();
            writer.record(0, &Err(failure.clone())).unwrap();
        }
        let done = load(&path, &m).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(done[&0].as_ref().unwrap_err(), &failure);
        let loaded = done[&1].as_ref().unwrap();
        assert_eq!(
            stats_to_json(loaded).render_compact(),
            stats_to_json(&stats).render_compact()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_line_is_discarded() {
        let dir = std::env::temp_dir().join("tps-ckpt-test-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let m = matrix();
        {
            let writer = CheckpointWriter::create(&path, &m).unwrap();
            writer
                .record(
                    0,
                    &Err(CellFailure {
                        cause: FailureCause::Fault,
                        attempts: 1,
                        message: "x".to_string(),
                    }),
                )
                .unwrap();
        }
        // Simulate a kill mid-write: append half an entry.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"cell\":1,\"ok\":tr").unwrap();
        drop(f);
        let done = load(&path, &m).unwrap();
        assert_eq!(done.len(), 1, "torn tail dropped, intact entry kept");
        assert!(done.contains_key(&0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_spec_is_rejected() {
        let dir = std::env::temp_dir().join("tps-ckpt-test-mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let m = matrix();
        CheckpointWriter::create(&path, &m).unwrap();
        let other = ExperimentSpec::new()
            .bench("gups")
            .mechanisms([Mechanism::Thp, Mechanism::Tps])
            .scale(SuiteScale::Test)
            .seed(10) // different seed → different fingerprint
            .build()
            .unwrap();
        let err = load(&path, &other).unwrap_err();
        assert!(matches!(err, TpsError::Checkpoint { .. }), "{err}");
        assert!(err.to_string().contains("different experiment spec"));
        // Not-a-journal files are rejected too.
        std::fs::write(&path, "{\"schema\":\"nope\"}\n").unwrap();
        assert!(load(&path, &m).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
