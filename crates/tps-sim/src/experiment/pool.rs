//! Deterministic `std::thread` worker pool executing matrix cells.
//!
//! Cells are claimed from a shared atomic cursor (work stealing keeps the
//! pool busy regardless of per-cell runtime skew) and every result is
//! written back to the cell's stable index, so the aggregated output is
//! identical for any thread count — including 1. A panicking cell is
//! caught at the worker boundary and surfaced as a per-cell
//! [`TpsError::WorkerPanic`]; the remaining cells keep running.

#[cfg(test)]
use crate::config::Mechanism;
use crate::machine::Machine;
use crate::smt::run_smt;
use crate::stats::RunStats;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tps_core::rng::SplitMix64;
use tps_core::TpsError;
use tps_wl::build_seeded;

use super::spec::{ExperimentCell, ExperimentSpec};

/// Runs every cell on `threads` workers, returning results in cell order.
pub(crate) fn run_cells(
    spec: &ExperimentSpec,
    cells: &[ExperimentCell],
    threads: usize,
) -> Vec<Result<RunStats, TpsError>> {
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<RunStats, TpsError>>>> =
        cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else {
                    break;
                };
                let outcome = run_cell_caught(spec, cell);
                match slots[i].lock() {
                    Ok(mut slot) => *slot = Some(outcome),
                    // A poisoned slot means another worker panicked while
                    // holding this lock, which the assignment above cannot
                    // do; recover the guard rather than aborting the pool.
                    Err(poisoned) => *poisoned.into_inner() = Some(outcome),
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            let inner = match slot.into_inner() {
                Ok(inner) => inner,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner.unwrap_or_else(|| {
                Err(TpsError::worker_panic(
                    "cell result missing after pool shutdown",
                ))
            })
        })
        .collect()
}

/// Runs one cell, converting a panic anywhere below into a `TpsError`.
fn run_cell_caught(spec: &ExperimentSpec, cell: &ExperimentCell) -> Result<RunStats, TpsError> {
    match catch_unwind(AssertUnwindSafe(|| run_cell(spec, cell))) {
        Ok(result) => result,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(TpsError::worker_panic(format!(
                "cell ({}, {}): {message}",
                cell.benchmark(),
                cell.mechanism()
            )))
        }
    }
}

/// Executes one cell: a fresh machine, a freshly seeded workload.
fn run_cell(spec: &ExperimentSpec, cell: &ExperimentCell) -> Result<RunStats, TpsError> {
    let config = spec.machine_config(cell.mechanism());
    let scale = spec.suite_scale();
    if spec.is_smt() {
        // Derive both sibling seeds from the cell seed so the pair is as
        // pinned as a native run.
        let mut sm = SplitMix64::new(cell.seed());
        let mut primary = build_seeded(cell.benchmark(), scale, sm.next_u64());
        let mut sibling = build_seeded(cell.benchmark(), scale, sm.next_u64());
        Ok(run_smt(config, &mut *primary, &mut *sibling).primary)
    } else {
        let mut machine = Machine::new(config);
        let mut workload = build_seeded(cell.benchmark(), scale, cell.seed());
        Ok(machine.run(&mut *workload))
    }
}

/// Convenience used by tests: runs one (benchmark, mechanism) cell the
/// way the pool would, without building a full matrix.
#[cfg(test)]
pub(crate) fn run_single(
    spec: &ExperimentSpec,
    benchmark: &str,
    mechanism: Mechanism,
    seed: u64,
) -> Result<RunStats, TpsError> {
    run_cell_caught(
        spec,
        &ExperimentCell {
            index: 0,
            benchmark: benchmark.to_string(),
            mechanism,
            seed,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_wl::SuiteScale;

    #[test]
    fn single_cell_runs_and_panics_are_caught() {
        let spec = ExperimentSpec::new().scale(SuiteScale::Test);
        let ok = run_single(&spec, "gups", Mechanism::Tps, 11).unwrap();
        assert!(ok.mem.accesses > 0);
        // 1 MB of physical memory cannot hold the test-scale GUPS table:
        // the machine panics inside mmap, which must surface as a
        // WorkerPanic, not abort the process.
        let tiny = ExperimentSpec::new()
            .scale(SuiteScale::Test)
            .memory(1 << 20);
        let err = run_single(&tiny, "gups", Mechanism::Tps, 11).unwrap_err();
        assert!(
            matches!(err, TpsError::WorkerPanic { .. }),
            "expected WorkerPanic, got {err}"
        );
        assert!(err.to_string().contains("gups"));
    }

    #[test]
    fn smt_cells_run() {
        let spec = ExperimentSpec::new().scale(SuiteScale::Test).smt(true);
        let stats = run_single(&spec, "gups", Mechanism::Thp, 3).unwrap();
        assert!(stats.mem.accesses > 0);
    }
}
