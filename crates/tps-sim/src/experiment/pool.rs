//! Deterministic `std::thread` worker pool executing matrix cells, with
//! per-cell retry, an optional watchdog deadline, and checkpoint
//! journaling.
//!
//! Cells are claimed from a shared atomic cursor (work stealing keeps the
//! pool busy regardless of per-cell runtime skew) and every result is
//! written back to the cell's stable index, so the aggregated output is
//! identical for any thread count — including 1. A failing cell (panic,
//! injected fault, or blown deadline) is retried through the spec's
//! budget — every attempt from the cell's same pinned workload seed —
//! then degrades to a structured [`CellFailure`]; the remaining cells
//! keep running either way.

#[cfg(test)]
use crate::config::Mechanism;
use crate::machine::{MachineBuilder, TenantSpec};
use crate::smt::run_smt;
use crate::stats::{MachineRunStats, TenantOutcome};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;
use tps_core::rng::SplitMix64;
use tps_core::{FaultPlan, InjectorHandle};
use tps_wl::{build_seeded, tenant_seeds};

use super::checkpoint::{CheckpointWriter, ResumeMap};
use super::report::{CellFailure, FailureCause};
use super::spec::{ExperimentCell, ExperimentSpec};

/// Journal/resume/crash-simulation hooks threaded into one pool run.
pub(crate) struct PoolHooks<'a, 'io> {
    /// Outcomes replayed from a journal; their cells are not executed.
    pub resume: Option<&'a ResumeMap>,
    /// Journal that newly completed cells are appended to.
    pub journal: Option<&'a CheckpointWriter<'io>>,
    /// Crash simulation: after this many cells have been journaled, the
    /// process exits with [`super::HALT_EXIT_CODE`] — as close to `kill -9`
    /// mid-run as a test can deterministically get.
    pub halt_after: Option<u64>,
}

/// Runs every cell on `threads` workers, returning results in cell order.
pub(crate) fn run_cells(
    spec: &ExperimentSpec,
    cells: &[ExperimentCell],
    threads: usize,
    hooks: &PoolHooks<'_, '_>,
) -> Vec<Result<MachineRunStats, CellFailure>> {
    let cursor = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<MachineRunStats, CellFailure>>>> =
        cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else {
                    break;
                };
                if let Some(done) = hooks.resume.and_then(|map| map.get(&cell.index())) {
                    store(&slots[i], done.clone());
                    continue;
                }
                let outcome = run_cell_resilient(spec, cell);
                if let Some(journal) = hooks.journal {
                    // A journal write failure must not lose the in-memory
                    // result; degrade to an unjournaled (non-resumable)
                    // cell and keep going.
                    let _ = journal.record(cell.index(), &outcome);
                    let finished = completed.fetch_add(1, Ordering::SeqCst) as u64 + 1;
                    if hooks.halt_after == Some(finished) {
                        std::process::exit(super::HALT_EXIT_CODE);
                    }
                }
                store(&slots[i], outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            let inner = match slot.into_inner() {
                Ok(inner) => inner,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner.unwrap_or_else(|| {
                Err(CellFailure {
                    cause: FailureCause::Panic,
                    attempts: 1,
                    message: "cell result missing after pool shutdown".to_string(),
                })
            })
        })
        .collect()
}

fn store(
    slot: &Mutex<Option<Result<MachineRunStats, CellFailure>>>,
    outcome: Result<MachineRunStats, CellFailure>,
) {
    match slot.lock() {
        Ok(mut guard) => *guard = Some(outcome),
        // A poisoned slot means another worker panicked while holding this
        // lock, which the assignment above cannot do; recover the guard
        // rather than aborting the pool.
        Err(poisoned) => *poisoned.into_inner() = Some(outcome),
    }
}

/// Runs one cell through its retry budget: the original attempt plus up
/// to `spec.retry_limit()` retries, each from the cell's same pinned
/// workload seed (only the fault-plan seed varies, deterministically, by
/// attempt). The last failure is returned when the budget runs out.
pub(crate) fn run_cell_resilient(
    spec: &ExperimentSpec,
    cell: &ExperimentCell,
) -> Result<MachineRunStats, CellFailure> {
    let budget = spec.retry_limit();
    let mut attempt = 1u32;
    loop {
        match run_attempt(spec, cell, attempt) {
            Ok(stats) => return Ok(stats),
            Err((cause, message)) => {
                if attempt <= budget {
                    attempt += 1;
                    continue;
                }
                return Err(CellFailure {
                    cause,
                    attempts: attempt,
                    message,
                });
            }
        }
    }
}

/// Runs one attempt, under the watchdog when the spec has a deadline.
fn run_attempt(
    spec: &ExperimentSpec,
    cell: &ExperimentCell,
    attempt: u32,
) -> Result<MachineRunStats, (FailureCause, String)> {
    match spec.cell_timeout() {
        None => run_attempt_caught(spec, cell, attempt),
        Some(deadline) => run_attempt_watched(spec, cell, attempt, deadline),
    }
}

/// Watchdog: the attempt runs on a detached thread; the monitor waits on
/// a channel with the deadline. A timed-out attempt is *abandoned* — the
/// simulator has no preemption points to interrupt, so its thread is left
/// to finish (or spin) on its own and the result, if any, is discarded.
fn run_attempt_watched(
    spec: &ExperimentSpec,
    cell: &ExperimentCell,
    attempt: u32,
    deadline: Duration,
) -> Result<MachineRunStats, (FailureCause, String)> {
    let (tx, rx) = mpsc::channel();
    let spec_owned = spec.clone();
    let cell_owned = cell.clone();
    std::thread::spawn(move || {
        let _ = tx.send(run_attempt_caught(&spec_owned, &cell_owned, attempt));
    });
    match rx.recv_timeout(deadline) {
        Ok(outcome) => outcome,
        Err(mpsc::RecvTimeoutError::Timeout) => Err((
            FailureCause::Timeout,
            format!(
                "cell ({}, {}): exceeded the {} ms deadline",
                cell.benchmark(),
                cell.mechanism(),
                deadline.as_millis()
            ),
        )),
        // The sender can only drop without sending if the runner thread
        // died outside catch_unwind, which an abort-on-panic build would
        // turn into process death anyway; classify as a panic.
        Err(mpsc::RecvTimeoutError::Disconnected) => Err((
            FailureCause::Panic,
            format!(
                "cell ({}, {}): attempt thread died without a result",
                cell.benchmark(),
                cell.mechanism()
            ),
        )),
    }
}

/// Runs one attempt in place, converting a panic anywhere below into a
/// failure. With fault injection configured, a panic is classified as
/// [`FailureCause::Fault`] — the injected faults are the presumed trigger.
fn run_attempt_caught(
    spec: &ExperimentSpec,
    cell: &ExperimentCell,
    attempt: u32,
) -> Result<MachineRunStats, (FailureCause, String)> {
    match catch_unwind(AssertUnwindSafe(|| run_cell(spec, cell, attempt))) {
        Ok(stats) => Ok(stats),
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            let cause = if spec.fault_config().is_some() {
                FailureCause::Fault
            } else {
                FailureCause::Panic
            };
            Err((
                cause,
                format!(
                    "worker thread panicked: cell ({}, {}): {message}",
                    cell.benchmark(),
                    cell.mechanism()
                ),
            ))
        }
    }
}

/// Executes one cell attempt: a fresh machine, freshly seeded workloads
/// (one per tenant), and (when configured) a fresh fault plan pinned to
/// (cell, attempt).
fn run_cell(spec: &ExperimentSpec, cell: &ExperimentCell, attempt: u32) -> MachineRunStats {
    let config = spec.machine_config(cell.mechanism());
    let scale = spec.suite_scale();
    if spec.is_smt() {
        // Derive both sibling seeds from the cell seed so the pair is as
        // pinned as a native run. (Faults + SMT is rejected at build time.)
        let mut sm = SplitMix64::new(cell.seed());
        let primary = build_seeded(cell.benchmark(), scale, sm.next_u64());
        let sibling = build_seeded(cell.benchmark(), scale, sm.next_u64());
        let smt = run_smt(config, primary, sibling);
        // SMT cells report the primary thread, as they always have; the
        // sibling rides along as the second tenant entry.
        MachineRunStats {
            global: smt.primary.clone(),
            per_tenant: vec![smt.primary],
            outcomes: vec![TenantOutcome::Completed],
        }
    } else {
        let tenants = spec.tenant_count();
        let specs: Vec<TenantSpec> = if tenants.is_solo() {
            // The classic single-process cell: the workload runs from the
            // cell seed itself, byte-identical with the pre-tenant runner.
            vec![TenantSpec::suite(cell.benchmark(), scale, cell.seed())]
        } else {
            tenant_seeds(cell.seed(), tenants.get())
                .into_iter()
                .map(|seed| TenantSpec::suite(cell.benchmark(), scale, seed))
                .collect()
        };
        let cap = spec.tenant_cap_config();
        let specs: Vec<TenantSpec> = specs
            .into_iter()
            .enumerate()
            .map(|(slot, tenant)| match cap {
                Some((capped, bytes)) if slot == capped as usize => tenant.memory_cap(bytes),
                _ => tenant,
            })
            .collect();
        let mut machine = MachineBuilder::new(config)
            .tenants(specs)
            .on_oom(spec.oom_policy())
            .build()
            .expect("a validated spec builds a non-empty machine");
        if let Some(mut fault_cfg) = spec.fault_config() {
            fault_cfg.seed = attempt_fault_seed(fault_cfg.seed, cell.seed(), attempt);
            let plan = Rc::new(RefCell::new(FaultPlan::new(fault_cfg)));
            machine.set_fault_injector(Some(plan as InjectorHandle));
        }
        machine.run()
    }
}

/// The fault-plan seed of one (cell, attempt) pair. Pinned to the plan's
/// base seed, the cell's position-pinned seed, and the attempt number —
/// never to scheduling — so retries are deterministic yet see a fresh
/// fault stream (a faulted attempt can deterministically succeed on
/// retry).
fn attempt_fault_seed(base: u64, cell_seed: u64, attempt: u32) -> u64 {
    SplitMix64::new(base ^ cell_seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .next_u64()
}

/// Convenience used by tests: runs one (benchmark, mechanism) cell the
/// way the pool would, without building a full matrix.
#[cfg(test)]
pub(crate) fn run_single(
    spec: &ExperimentSpec,
    benchmark: &str,
    mechanism: Mechanism,
    seed: u64,
) -> Result<MachineRunStats, CellFailure> {
    run_cell_resilient(
        spec,
        &ExperimentCell {
            index: 0,
            benchmark: benchmark.to_string(),
            mechanism,
            seed,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::FaultPlanConfig;
    use tps_wl::SuiteScale;

    #[test]
    fn single_cell_runs_and_panics_are_caught() {
        let spec = ExperimentSpec::new().scale(SuiteScale::Test);
        let ok = run_single(&spec, "gups", Mechanism::Tps, 11).unwrap();
        assert!(ok.global.mem.accesses > 0);
        // A panic below the runner — here a bogus benchmark name reaching
        // the workload factory, bypassing spec validation — must surface
        // as a cell failure, not abort the process.
        let failure = run_single(&spec, "nonesuch", Mechanism::Tps, 11).unwrap_err();
        assert_eq!(failure.cause, FailureCause::Panic);
        assert_eq!(failure.attempts, 1);
        assert!(failure.message.contains("worker thread panicked"));
        assert!(failure.message.contains("nonesuch"));
    }

    #[test]
    fn oom_cells_contain_instead_of_panicking() {
        // 1 MB of physical memory cannot hold the test-scale GUPS table:
        // the machine kills the tenant at its first mmap and completes the
        // run with a structured outcome instead of panicking the cell.
        let tiny = ExperimentSpec::new()
            .scale(SuiteScale::Test)
            .memory(1 << 20);
        let stats = run_single(&tiny, "gups", Mechanism::Tps, 11).unwrap();
        assert_eq!(stats.killed_count(), 1);
        assert!(matches!(
            stats.outcome(0),
            crate::stats::TenantOutcome::Killed {
                cause: tps_core::TenantFaultCause::Oom,
                ..
            }
        ));
    }

    #[test]
    fn smt_cells_run() {
        let spec = ExperimentSpec::new().scale(SuiteScale::Test).smt(true);
        let stats = run_single(&spec, "gups", Mechanism::Thp, 3).unwrap();
        assert!(stats.global.mem.accesses > 0);
    }

    #[test]
    fn multi_tenant_cells_attribute_per_tenant_stats() {
        use super::super::spec::TenantCount;
        let spec = ExperimentSpec::new()
            .scale(SuiteScale::Test)
            .tenants(TenantCount::new(4).unwrap());
        let stats = run_single(&spec, "gups", Mechanism::Tps, 9).unwrap();
        assert_eq!(stats.tenant_count(), 4);
        for tenant in &stats.per_tenant {
            assert!(tenant.mem.accesses > 0);
        }
        let sum: u64 = stats.per_tenant.iter().map(|s| s.mem.accesses).sum();
        assert_eq!(stats.global.mem.accesses, sum);
    }

    #[test]
    fn capped_tenants_and_oom_policy_reach_the_machine() {
        use super::super::spec::TenantCount;
        // The cap knob lands on the right slot: tenant 0 dies at its first
        // mmap (16 MB table, 1 MB cap), tenant 1 runs to completion.
        let spec = ExperimentSpec::new()
            .scale(SuiteScale::Test)
            .tenants(TenantCount::new(2).unwrap())
            .tenant_cap(0, 1 << 20);
        let stats = run_single(&spec, "gups", Mechanism::Tps, 9).unwrap();
        assert!(matches!(
            stats.outcome(0),
            crate::stats::TenantOutcome::Killed {
                cause: tps_core::TenantFaultCause::CapExceeded,
                ..
            }
        ));
        assert!(!stats.outcome(1).is_killed());
        assert!(stats.per_tenant[1].mem.accesses > 0);
    }

    #[test]
    fn deterministic_panic_exhausts_the_retry_budget() {
        let spec = ExperimentSpec::new().scale(SuiteScale::Test).retries(2);
        let failure = run_single(&spec, "nonesuch", Mechanism::Tps, 11).unwrap_err();
        assert_eq!(failure.attempts, 3, "original attempt + 2 retries");
        assert_eq!(failure.cause, FailureCause::Panic);
    }

    #[test]
    fn panics_under_fault_injection_classify_as_faults() {
        let spec = ExperimentSpec::new()
            .scale(SuiteScale::Test)
            .faults(FaultPlanConfig::disabled(1));
        let failure = run_single(&spec, "nonesuch", Mechanism::Tps, 11).unwrap_err();
        assert_eq!(failure.cause, FailureCause::Fault);
    }

    #[test]
    fn faulted_cells_degrade_not_fail() {
        // Heavy uniform fault pressure on every OS and hardware site: the
        // run must still complete with correct translations, counting its
        // degradations instead of failing.
        let mut cfg = FaultPlanConfig::uniform(7, 0.05);
        let hw = FaultPlanConfig::uniform_hw(7, 0.05);
        cfg.walk_step = hw.walk_step;
        cfg.alias_install = hw.alias_install;
        cfg.mmu_cache_fill = hw.mmu_cache_fill;
        cfg.any_size_fill = hw.any_size_fill;
        cfg.any_size_evict = hw.any_size_evict;
        cfg.stlb_probe = hw.stlb_probe;
        let spec = ExperimentSpec::new()
            .scale(SuiteScale::Test)
            .verify(true)
            .faults(cfg);
        let stats = run_single(&spec, "gups", Mechanism::Tps, 11).unwrap();
        assert!(
            stats.global.hw_faults.total() > 0,
            "hardware sites absorbed faults: {:?}",
            stats.global.hw_faults
        );
    }

    #[test]
    fn retries_are_deterministic() {
        let spec = ExperimentSpec::new()
            .scale(SuiteScale::Test)
            .retries(2)
            .faults(FaultPlanConfig::uniform(3, 0.02));
        let a = run_single(&spec, "gups", Mechanism::Tps, 5);
        let b = run_single(&spec, "gups", Mechanism::Tps, 5);
        match (&a, &b) {
            (Ok(x), Ok(y)) => assert_eq!(x.global.mem, y.global.mem),
            (Err(x), Err(y)) => assert_eq!(x, y),
            _ => panic!("outcomes diverged between identical runs"),
        }
    }

    #[test]
    fn watchdog_times_a_cell_out() {
        // A 0 ms deadline fires immediately; the cell degrades to a
        // Timeout failure after its whole retry budget.
        let spec = ExperimentSpec::new()
            .scale(SuiteScale::Test)
            .cell_timeout_ms(0)
            .retries(1);
        let failure = run_single(&spec, "gups", Mechanism::Tps, 11).unwrap_err();
        assert_eq!(failure.cause, FailureCause::Timeout);
        assert_eq!(failure.attempts, 2);
        assert!(failure.message.contains("deadline"));
        // A generous deadline does not perturb the result.
        let ok = ExperimentSpec::new()
            .scale(SuiteScale::Test)
            .cell_timeout_ms(600_000);
        let stats = run_single(&ok, "gups", Mechanism::Tps, 11).unwrap();
        let plain = run_single(
            &ExperimentSpec::new().scale(SuiteScale::Test),
            "gups",
            Mechanism::Tps,
            11,
        )
        .unwrap();
        assert_eq!(stats.global.mem, plain.global.mem);
    }
}
