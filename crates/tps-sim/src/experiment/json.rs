//! Minimal in-tree JSON writer for experiment reports.
//!
//! The workspace is offline (no serde), and the determinism contract of
//! [`crate::experiment`] needs byte-stable output anyway, so the report
//! serializer is a small value tree with insertion-ordered objects and a
//! fixed pretty-printing scheme. Floats use Rust's shortest-round-trip
//! formatting, which is a pure function of the bit pattern; non-finite
//! values (which JSON cannot represent) render as `null`.

/// One JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer number.
    U64(u64),
    /// A floating-point number (`null` when not finite).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub(crate) fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a key/value pair. Debug-asserts that `self` is an object
    /// (a builder-time programming error, not a runtime input).
    pub(crate) fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Object(pairs) => pairs.push((key.to_string(), value)),
            other => debug_assert!(false, "set() on non-object {other:?}"),
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent, `\n`
    /// separators, no trailing newline). Byte-stable for equal values.
    pub(crate) fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<Option<f64>> for Json {
    fn from(v: Option<f64>) -> Json {
        match v {
            Some(x) => Json::F64(x),
            None => Json::Null,
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(1.0).render(), "1");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).render(),
            "\"a\\\"b\\\\c\\nd\""
        );
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structure_is_stable() {
        let mut obj = Json::object();
        obj.set("b", Json::U64(2));
        obj.set("a", Json::Array(vec![Json::U64(1), Json::Null]));
        obj.set("empty", Json::Object(Vec::new()));
        let rendered = obj.render();
        assert_eq!(
            rendered,
            "{\n  \"b\": 2,\n  \"a\": [\n    1,\n    null\n  ],\n  \"empty\": {}\n}"
        );
        // Insertion order, not sorted: "b" stays before "a".
        assert!(rendered.find("\"b\"").unwrap() < rendered.find("\"a\"").unwrap());
    }

    #[test]
    fn option_conversion() {
        assert_eq!(Json::from(Some(2.5)).render(), "2.5");
        assert_eq!(Json::from(None).render(), "null");
    }
}
