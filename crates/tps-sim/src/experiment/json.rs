//! Minimal in-tree JSON writer for experiment reports.
//!
//! The workspace is offline (no serde), and the determinism contract of
//! [`crate::experiment`] needs byte-stable output anyway, so the report
//! serializer is a small value tree with insertion-ordered objects and a
//! fixed pretty-printing scheme. Floats use Rust's shortest-round-trip
//! formatting, which is a pure function of the bit pattern; non-finite
//! values (which JSON cannot represent) render as `null`.

/// One JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer number.
    U64(u64),
    /// A floating-point number (`null` when not finite).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub(crate) fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a key/value pair. Debug-asserts that `self` is an object
    /// (a builder-time programming error, not a runtime input).
    pub(crate) fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Object(pairs) => pairs.push((key.to_string(), value)),
            other => debug_assert!(false, "set() on non-object {other:?}"),
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent, `\n`
    /// separators, no trailing newline). Byte-stable for equal values.
    pub(crate) fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders the value on one line with no whitespace — the checkpoint
    /// journal format, where one entry must be one line. Byte-stable.
    pub(crate) fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    /// Parses one JSON document (the subset this writer emits: no
    /// exponents in integers it wrote, but general number syntax is
    /// accepted). Integral non-negative numbers parse as [`Json::U64`],
    /// everything else numeric as [`Json::F64`], so values written by
    /// [`Json::render_compact`] round-trip exactly.
    pub(crate) fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    /// The value under `key`, when `self` is an object holding it.
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, accepting an integral `F64` (a parser that saw
    /// `1` where a float was written emits `U64(1)` and vice versa).
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::F64(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as an f64 (any number).
    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string.
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<Option<f64>> for Json {
    fn from(v: Option<f64>) -> Json {
        match v {
            Some(x) => Json::F64(x),
            None => Json::Null,
        }
    }
}

/// Recursive-descent parser over the writer's own output (plus standard
/// JSON it happens not to emit, like signed and exponent numbers).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // The writer only emits \u for control bytes, so
                            // surrogate pairs never appear in our own output.
                            out.push(
                                char::from_u32(code).ok_or_else(|| format!("invalid \\u{hex}"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(1.0).render(), "1");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).render(),
            "\"a\\\"b\\\\c\\nd\""
        );
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structure_is_stable() {
        let mut obj = Json::object();
        obj.set("b", Json::U64(2));
        obj.set("a", Json::Array(vec![Json::U64(1), Json::Null]));
        obj.set("empty", Json::Object(Vec::new()));
        let rendered = obj.render();
        assert_eq!(
            rendered,
            "{\n  \"b\": 2,\n  \"a\": [\n    1,\n    null\n  ],\n  \"empty\": {}\n}"
        );
        // Insertion order, not sorted: "b" stays before "a".
        assert!(rendered.find("\"b\"").unwrap() < rendered.find("\"a\"").unwrap());
    }

    #[test]
    fn option_conversion() {
        assert_eq!(Json::from(Some(2.5)).render(), "2.5");
        assert_eq!(Json::from(None).render(), "null");
    }

    #[test]
    fn compact_rendering_is_one_line() {
        let mut obj = Json::object();
        obj.set("a", Json::U64(1));
        obj.set("b", Json::Array(vec![Json::Null, Json::Str("x y".into())]));
        assert_eq!(obj.render_compact(), "{\"a\":1,\"b\":[null,\"x y\"]}");
    }

    #[test]
    fn parse_round_trips_compact_output() {
        let mut obj = Json::object();
        obj.set("u", Json::U64(u64::MAX));
        obj.set("f", Json::F64(1.5));
        obj.set("whole", Json::F64(2.0)); // renders "2", parses back U64(2)
        obj.set("s", Json::Str("quote \" slash \\ tab \t".into()));
        obj.set("ctl", Json::Str("\u{1}".into()));
        obj.set("arr", Json::Array(vec![Json::Bool(false), Json::Null]));
        obj.set("empty", Json::Object(Vec::new()));
        let compact = obj.render_compact();
        let parsed = Json::parse(&compact).unwrap();
        // Whole floats collapse to U64 on reparse; every accessor still
        // reads them either way, and re-rendering is byte-identical.
        assert_eq!(parsed.render_compact(), compact);
        assert_eq!(parsed.get("u").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(parsed.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(parsed.get("whole").unwrap().as_u64(), Some(2));
        assert_eq!(
            parsed.get("s").unwrap().as_str(),
            Some("quote \" slash \\ tab \t")
        );
        assert_eq!(parsed.get("ctl").unwrap().as_str(), Some("\u{1}"));
        assert_eq!(parsed.get("arr").unwrap(), &obj.get("arr").unwrap().clone());
        // Pretty output parses too.
        assert_eq!(Json::parse(&obj.render()).unwrap().render(), obj.render());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_accepts_general_numbers() {
        assert_eq!(Json::parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
    }
}
