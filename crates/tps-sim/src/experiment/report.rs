//! Aggregated experiment results and their versioned JSON serialization.

use crate::config::Mechanism;
use crate::stats::{MachineRunStats, RunStats};
use crate::timing::TimingModel;
use tps_wl::SuiteScale;

use super::checkpoint::outcome_json;
use super::json::Json;
use super::spec::{ExperimentMatrix, TenantCount};

/// The `"schema"` marker every serialized report carries.
pub const REPORT_SCHEMA: &str = "tps-experiment-report";

/// Version of the serialized report layout. Bump when a field changes
/// meaning or disappears; adding fields is backward compatible.
pub const REPORT_VERSION: u64 = 1;

/// Why one cell ended in failure after exhausting its retry budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureCause {
    /// The cell exceeded the spec's per-cell deadline.
    Timeout,
    /// The cell panicked with no fault injection configured.
    Panic,
    /// The cell failed (panicked or errored) while fault injection was
    /// active — the injected faults are the presumed trigger.
    Fault,
}

impl FailureCause {
    /// The stable label serialized into reports and checkpoints.
    pub fn label(self) -> &'static str {
        match self {
            FailureCause::Timeout => "timeout",
            FailureCause::Panic => "panic",
            FailureCause::Fault => "fault",
        }
    }

    /// Parses a serialized label back (checkpoint resume).
    pub fn from_label(label: &str) -> Option<FailureCause> {
        match label {
            "timeout" => Some(FailureCause::Timeout),
            "panic" => Some(FailureCause::Panic),
            "fault" => Some(FailureCause::Fault),
            _ => None,
        }
    }
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The structured failure record of one cell: every attempt (original run
/// plus retries) failed, and the last failure is preserved here instead of
/// poisoning the rest of the matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellFailure {
    /// What went wrong on the final attempt.
    pub cause: FailureCause,
    /// Attempts consumed (1 without retries; `retries + 1` when the cell
    /// kept failing through its whole budget).
    pub attempts: u32,
    /// Human-readable description of the final failure.
    pub message: String,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} after {} attempt{}: {}",
            self.cause,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

/// Paper metrics derived for one cell at aggregation time.
///
/// Baseline-relative fields are `None` when the sweep has no baseline
/// mechanism or the baseline cell for the same benchmark failed.
#[derive(Clone, Copy, Debug, Default)]
pub struct DerivedMetrics {
    /// Execution-time speedup over the baseline mechanism (Figs. 13/14).
    pub speedup_vs_baseline: Option<f64>,
    /// Fraction of L1 DTLB misses eliminated vs. the baseline (Fig. 10).
    pub l1_miss_elimination: Option<f64>,
    /// Fraction of page-walk memory references eliminated (Fig. 11).
    pub walk_ref_elimination: Option<f64>,
    /// Resident bytes over demand-touched bytes (Fig. 9 memory bloat);
    /// `None` when the run touched nothing.
    pub memory_bloat: Option<f64>,
}

/// One aggregated cell: identity, outcome, and derived metrics.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// The benchmark this cell ran.
    pub benchmark: String,
    /// The mechanism this cell ran under.
    pub mechanism: Mechanism,
    /// The cell's pinned workload seed.
    pub seed: u64,
    /// The run's statistics — the machine-wide rollup plus per-tenant
    /// breakdowns — or the structured failure (a failed or panicked cell
    /// never aborts the rest of the matrix).
    pub result: Result<MachineRunStats, CellFailure>,
    /// Derived paper metrics; `None` for failed cells.
    pub derived: Option<DerivedMetrics>,
}

/// Results of one matrix run, in stable spec order.
///
/// The report is the shared result format of the CLI, the figure
/// harnesses, and regression tooling: [`ExperimentReport::to_json`]
/// serializes it to a versioned document whose bytes depend only on the
/// spec and the simulation results — never on thread count or scheduling.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    scale: SuiteScale,
    smt: bool,
    tenants: TenantCount,
    seed: u64,
    baseline: Option<Mechanism>,
    cells: Vec<CellReport>,
    /// Corrupt journal entries a salvage resume dropped (and re-ran).
    /// `None` for every run that did not salvage, so the serialized
    /// document of a clean run is unchanged.
    salvage_dropped: Option<u64>,
}

impl ExperimentReport {
    /// Aggregates pool results (in cell order) into a report.
    pub(crate) fn aggregate(
        matrix: &ExperimentMatrix,
        results: Vec<Result<MachineRunStats, CellFailure>>,
    ) -> ExperimentReport {
        let spec = matrix.spec();
        let baseline = spec.baseline_mechanism();
        let model = TimingModel::default();
        let smt = spec.is_smt();
        let mut cells: Vec<CellReport> = matrix
            .cells()
            .iter()
            .zip(results)
            .map(|(cell, result)| CellReport {
                benchmark: cell.benchmark().to_string(),
                mechanism: cell.mechanism(),
                seed: cell.seed(),
                result,
                derived: None,
            })
            .collect();
        for i in 0..cells.len() {
            // Derived metrics compare machine-wide rollups: the figures
            // report whole-machine behavior whatever the tenant count.
            let Ok(machine) = &cells[i].result else {
                continue;
            };
            let stats = &machine.global;
            let mut derived = DerivedMetrics {
                memory_bloat: (stats.touched_bytes > 0)
                    .then(|| stats.resident_bytes as f64 / stats.touched_bytes as f64),
                ..Default::default()
            };
            let base_stats = baseline.and_then(|base| {
                cells
                    .iter()
                    .find(|c| c.benchmark == cells[i].benchmark && c.mechanism == base)
                    .and_then(|c| c.result.as_ref().ok())
                    .map(|m| &m.global)
            });
            if let Some(base) = base_stats {
                let t = model.evaluate(stats, smt);
                let t_base = model.evaluate(base, smt);
                derived.speedup_vs_baseline = Some(t.speedup_over(&t_base));
                derived.l1_miss_elimination = Some(stats.l1_misses_eliminated_vs(base));
                derived.walk_ref_elimination = Some(stats.walk_refs_eliminated_vs(base));
            }
            cells[i].derived = Some(derived);
        }
        ExperimentReport {
            scale: spec.suite_scale(),
            smt,
            tenants: spec.tenant_count(),
            seed: spec.base_seed(),
            baseline,
            cells,
            salvage_dropped: None,
        }
    }

    /// Records that a salvage resume dropped `dropped` corrupt journal
    /// entries (their cells were recomputed). Shows up in the serialized
    /// document so a salvaged report is always distinguishable.
    pub(crate) fn note_salvage(&mut self, dropped: u64) {
        self.salvage_dropped = Some(dropped);
    }

    /// Corrupt journal entries dropped by a salvage resume, when one ran.
    pub fn salvage_dropped(&self) -> Option<u64> {
        self.salvage_dropped
    }

    /// The workload scale the matrix ran at.
    pub fn scale(&self) -> SuiteScale {
        self.scale
    }

    /// Whether cells ran as SMT sibling pairs.
    pub fn is_smt(&self) -> bool {
        self.smt
    }

    /// How many tenant processes each cell's machine ran.
    pub fn tenant_count(&self) -> TenantCount {
        self.tenants
    }

    /// The spec's base seed.
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    /// The baseline mechanism derived metrics compare against, if any.
    pub fn baseline_mechanism(&self) -> Option<Mechanism> {
        self.baseline
    }

    /// The aggregated cells, in stable spec order.
    pub fn cells(&self) -> &[CellReport] {
        &self.cells
    }

    /// Looks one cell up by benchmark and mechanism.
    pub fn get(&self, benchmark: &str, mechanism: Mechanism) -> Option<&CellReport> {
        self.cells
            .iter()
            .find(|c| c.benchmark == benchmark && c.mechanism == mechanism)
    }

    /// The machine-wide statistics of one successful cell, if present.
    pub fn stats(&self, benchmark: &str, mechanism: Mechanism) -> Option<&RunStats> {
        self.machine_stats(benchmark, mechanism).map(|m| &m.global)
    }

    /// The full per-tenant statistics of one successful cell, if present.
    pub fn machine_stats(&self, benchmark: &str, mechanism: Mechanism) -> Option<&MachineRunStats> {
        self.get(benchmark, mechanism)
            .and_then(|c| c.result.as_ref().ok())
    }

    /// Number of cells whose run failed.
    pub fn error_count(&self) -> usize {
        self.cells.iter().filter(|c| c.result.is_err()).count()
    }

    /// Serializes the report to the versioned JSON document.
    ///
    /// Byte-determinism contract: for a given spec and simulation
    /// outcome, the returned string is identical regardless of how many
    /// worker threads produced the results. Thread count is deliberately
    /// not part of the document.
    pub fn to_json(&self) -> String {
        let mut doc = Json::object();
        doc.set("schema", Json::Str(REPORT_SCHEMA.to_string()));
        doc.set("version", Json::U64(REPORT_VERSION));
        doc.set("scale", Json::Str(self.scale.label().to_string()));
        doc.set("smt", Json::Bool(self.smt));
        if !self.tenants.is_solo() {
            // Solo runs keep the pre-tenant document byte-for-byte; the
            // axis appears only when it deviates from the classic machine.
            doc.set("tenants", Json::U64(u64::from(self.tenants.get())));
        }
        doc.set("seed", Json::U64(self.seed));
        doc.set(
            "baseline",
            match self.baseline {
                Some(m) => Json::Str(m.label().to_string()),
                None => Json::Null,
            },
        );
        if let Some(dropped) = self.salvage_dropped {
            let mut salvage = Json::object();
            salvage.set("dropped_entries", Json::U64(dropped));
            doc.set("salvage", salvage);
        }
        let cells = self.cells.iter().map(cell_json).collect();
        doc.set("cells", Json::Array(cells));
        doc.render()
    }
}

impl CellReport {
    /// Serializes this one cell the way [`ExperimentReport::to_json`]
    /// embeds it — the unit of comparison when a salvaged run (whose
    /// document carries a `"salvage"` block) is checked cell-by-cell
    /// against an uninterrupted one.
    pub fn to_json(&self) -> String {
        cell_json(self).render()
    }
}

fn cell_json(cell: &CellReport) -> Json {
    let mut obj = Json::object();
    obj.set("benchmark", Json::Str(cell.benchmark.clone()));
    obj.set("mechanism", Json::Str(cell.mechanism.label().to_string()));
    obj.set("seed", Json::U64(cell.seed));
    match &cell.result {
        Ok(machine) => {
            obj.set("ok", Json::Bool(true));
            obj.set("stats", stats_json(&machine.global));
            if machine.per_tenant.len() > 1 {
                let tenants = machine.per_tenant.iter().map(stats_json).collect();
                obj.set("tenants", Json::Array(tenants));
            }
            // As with the tenants array: kill-free cells keep the
            // pre-outcome document byte-for-byte.
            if machine.outcomes.iter().any(|o| o.is_killed()) {
                let outcomes = machine.outcomes.iter().map(outcome_json).collect();
                obj.set("outcomes", Json::Array(outcomes));
            }
        }
        Err(failure) => {
            obj.set("ok", Json::Bool(false));
            obj.set("error", Json::Str(failure.message.clone()));
            obj.set("cause", Json::Str(failure.cause.label().to_string()));
            obj.set("attempts", Json::U64(u64::from(failure.attempts)));
        }
    }
    if let Some(d) = cell.derived {
        let mut derived = Json::object();
        derived.set("speedup_vs_baseline", Json::from(d.speedup_vs_baseline));
        derived.set("l1_miss_elimination", Json::from(d.l1_miss_elimination));
        derived.set("walk_ref_elimination", Json::from(d.walk_ref_elimination));
        derived.set("memory_bloat", Json::from(d.memory_bloat));
        obj.set("derived", derived);
    }
    obj
}

fn stats_json(stats: &RunStats) -> Json {
    let mut obj = Json::object();
    obj.set("accesses", Json::U64(stats.mem.accesses));
    obj.set("l1_hits", Json::U64(stats.mem.l1_hits));
    obj.set("l1_misses", Json::U64(stats.mem.l1_misses()));
    obj.set("stlb_hits", Json::U64(stats.mem.stlb_hits));
    obj.set("range_hits", Json::U64(stats.mem.range_hits));
    obj.set("l2_misses", Json::U64(stats.mem.l2_misses));
    obj.set("walks", Json::U64(stats.walks));
    obj.set("walk_refs", Json::U64(stats.walk_refs));
    obj.set("alias_extras", Json::U64(stats.alias_extras));
    obj.set("ad_updates", Json::U64(stats.ad_updates));
    obj.set("instructions", Json::U64(stats.instructions));
    obj.set("full_instructions", Json::U64(stats.full_instructions));
    obj.set("full_walk_refs", Json::U64(stats.full_walk_refs));
    obj.set("faults", Json::U64(stats.os.faults));
    obj.set("promotions", Json::U64(stats.os.promotions));
    obj.set("shootdowns", Json::U64(stats.os.shootdowns));
    obj.set("fallback_4k", Json::U64(stats.os.fallback_4k));
    obj.set("os_cycles", Json::U64(stats.os.op_cycles));
    obj.set("resident_bytes", Json::U64(stats.resident_bytes));
    obj.set("touched_bytes", Json::U64(stats.touched_bytes));
    let mut census = Json::object();
    for (order, pages) in &stats.page_census {
        census.set(&format!("{}", order.get()), Json::U64(*pages));
    }
    obj.set("page_census", census);
    let hw = &stats.hw_faults;
    let mut hw_obj = Json::object();
    hw_obj.set("walk_restarts", Json::U64(hw.walk_restarts));
    hw_obj.set("alias_install_retries", Json::U64(hw.alias_install_retries));
    hw_obj.set("mmu_cache_fill_drops", Json::U64(hw.mmu_cache_fill_drops));
    hw_obj.set("tlb_fill_drops", Json::U64(hw.tlb_fill_drops));
    hw_obj.set("tlb_evict_abandons", Json::U64(hw.tlb_evict_abandons));
    hw_obj.set("stlb_probe_misses", Json::U64(hw.stlb_probe_misses));
    obj.set("hw_faults", hw_obj);
    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::spec::ExperimentSpec;

    fn tiny_report() -> ExperimentReport {
        ExperimentSpec::new()
            .bench("gups")
            .mechanisms([Mechanism::Thp, Mechanism::Tps])
            .scale(SuiteScale::Test)
            .seed(42)
            .threads(2)
            .build()
            .unwrap()
            .run()
    }

    #[test]
    fn aggregation_carries_derived_metrics() {
        let report = tiny_report();
        assert_eq!(report.cells().len(), 2);
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.baseline_mechanism(), Some(Mechanism::Thp));
        let thp = report.get("gups", Mechanism::Thp).unwrap();
        let tps = report.get("gups", Mechanism::Tps).unwrap();
        let d_thp = thp.derived.unwrap();
        let d_tps = tps.derived.unwrap();
        assert!((d_thp.speedup_vs_baseline.unwrap() - 1.0).abs() < 1e-12);
        // Against itself the elimination is 0, or the vacuous 1.0 when the
        // baseline had no misses at this tiny scale.
        let self_elim = d_thp.l1_miss_elimination.unwrap();
        assert!(self_elim == 0.0 || self_elim == 1.0, "{self_elim}");
        assert!(d_tps.speedup_vs_baseline.unwrap() >= 1.0, "TPS beats THP");
        assert!(d_tps.l1_miss_elimination.unwrap() > 0.5);
        assert!(d_tps.memory_bloat.unwrap() >= 1.0);
        assert!(report.stats("gups", Mechanism::Tps).is_some());
        assert!(report.stats("gups", Mechanism::Rmm).is_none());
    }

    #[test]
    fn multi_tenant_reports_embed_per_tenant_stats() {
        let report = ExperimentSpec::new()
            .bench("gups")
            .mechanism(Mechanism::Tps)
            .scale(SuiteScale::Test)
            .tenants(TenantCount::new(2).unwrap())
            .seed(42)
            .threads(1)
            .build()
            .unwrap()
            .run();
        let json = report.to_json();
        assert!(json.contains("\"tenants\": 2"), "{json}");
        let machine = report.machine_stats("gups", Mechanism::Tps).unwrap();
        assert_eq!(machine.tenant_count(), 2);
        // A solo report keeps the pre-tenant document: no tenants keys.
        assert!(!tiny_report().to_json().contains("\"tenants\""));
    }

    #[test]
    fn json_document_is_versioned_and_stable() {
        let report = tiny_report();
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"tps-experiment-report\""));
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"scale\": \"test\""));
        assert!(json.contains("\"baseline\": \"THP\""));
        assert!(json.contains("\"benchmark\": \"gups\""));
        assert!(json.contains("\"page_census\""));
        assert!(!json.contains("thread"), "thread count must not leak in");
        assert_eq!(json, tiny_report().to_json(), "rerun is byte-identical");
    }
}
