//! Deterministic parallel experiment-matrix runner with retry, watchdog,
//! and checkpoint/resume.
//!
//! Every paper figure is a (benchmark × mechanism × machine-config)
//! matrix whose cells are fully independent: each runs a fresh
//! [`crate::Machine`] over a seeded workload. This module turns that
//! property into wall-clock savings without touching any per-run
//! statistic:
//!
//! 1. [`ExperimentSpec`] — declarative builder describing the sweep,
//!    including the resilience knobs ([`ExperimentSpec::retries`],
//!    [`ExperimentSpec::cell_timeout_ms`], [`ExperimentSpec::faults`]).
//! 2. [`ExperimentMatrix`] — the validated expansion into cells, each
//!    with a seed pinned to its stable position in spec order.
//! 3. [`ExperimentMatrix::run`] / [`ExperimentMatrix::run_with`] —
//!    executes cells on a `std::thread` worker pool and aggregates an
//!    [`ExperimentReport`] in spec order, so parallel output is
//!    **byte-identical** to a serial run.
//!
//! A cell that keeps failing through its retry budget — panicking,
//! blowing its watchdog deadline, or succumbing to injected faults —
//! degrades to a per-cell [`CellFailure`] entry; the rest of the matrix
//! completes. With [`RunOptions::checkpoint`] set, completed cells stream
//! to an append-only journal from which [`RunOptions::resume`] replays
//! them, producing output byte-identical to an uninterrupted run.
//! [`ExperimentReport::to_json`] serializes the results plus derived
//! paper metrics to a versioned JSON document shared by the CLI, the
//! figure harnesses, and regression tooling.
//!
//! # Example
//!
//! ```
//! use tps_sim::{ExperimentSpec, Mechanism};
//! use tps_wl::SuiteScale;
//!
//! let report = ExperimentSpec::new()
//!     .bench("gups")
//!     .mechanisms([Mechanism::Thp, Mechanism::Tps])
//!     .scale(SuiteScale::Test)
//!     .threads(2)
//!     .build()
//!     .unwrap()
//!     .run();
//! assert_eq!(report.error_count(), 0);
//! assert!(report.stats("gups", Mechanism::Tps).is_some());
//! ```

mod checkpoint;
pub mod io;
mod json;
mod pool;
mod report;
mod spec;

use std::path::PathBuf;

use tps_core::TpsError;

pub use checkpoint::{CHECKPOINT_SCHEMA, CHECKPOINT_VERSION};
pub use io::{write_atomic, ArtifactIo, ArtifactSink, FaultyIo, FaultyIoConfig, RealIo};
pub use report::{
    CellFailure, CellReport, DerivedMetrics, ExperimentReport, FailureCause, REPORT_SCHEMA,
    REPORT_VERSION,
};
pub use spec::{
    ExperimentCell, ExperimentMatrix, ExperimentSpec, TenantCount, DEFAULT_EXPERIMENT_SEED,
    MAX_TENANTS,
};

/// Exit code of a run halted by [`RunOptions::halt_after`] — the
/// deterministic stand-in for a mid-flight kill in crash/resume tests.
pub const HALT_EXIT_CODE: i32 = 5;

/// Checkpoint/resume options for [`ExperimentMatrix::run_with`].
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Start a fresh journal here (truncating any existing file) and
    /// stream every completed cell into it.
    pub checkpoint: Option<PathBuf>,
    /// Load completed cells from this journal, skip them, and append the
    /// newly completed cells to the same file. The journal must have been
    /// written for an identical spec (verified by fingerprint).
    pub resume: Option<PathBuf>,
    /// Crash simulation: exit the process with [`HALT_EXIT_CODE`] after
    /// this many cells have been journaled. Only meaningful with a
    /// journal; used by the resume gates in `scripts/verify.sh`.
    pub halt_after: Option<u64>,
    /// Salvage mode for [`RunOptions::resume`]: instead of refusing a
    /// journal with mid-file corruption, drop the damaged entries,
    /// recompute their cells, and note the drop count in the report.
    pub salvage: bool,
    /// Let [`RunOptions::checkpoint`] overwrite an existing journal that
    /// holds entries or belongs to a different spec. Without this the
    /// clobber guard refuses.
    pub force_checkpoint: bool,
}

impl ExperimentMatrix {
    /// Runs every cell on the spec's worker pool and aggregates the
    /// results in stable spec order.
    ///
    /// The output — including [`ExperimentReport::to_json`] bytes — is
    /// identical for every thread count; only wall-clock time changes.
    pub fn run(&self) -> ExperimentReport {
        self.run_with(&RunOptions::default())
            .expect("no checkpoint I/O configured")
    }

    /// [`ExperimentMatrix::run`] plus checkpoint journaling and resume,
    /// on the real filesystem.
    ///
    /// # Errors
    ///
    /// [`TpsError::Checkpoint`] when the journal cannot be created,
    /// loaded, or does not match this matrix's spec, and
    /// [`TpsError::CheckpointCorrupt`] when resume finds mid-file damage
    /// without [`RunOptions::salvage`]. Per-cell failures never surface
    /// here — they degrade to [`CellFailure`] entries in the report.
    pub fn run_with(&self, options: &RunOptions) -> Result<ExperimentReport, TpsError> {
        self.run_with_io(options, &io::RealIo)
    }

    /// [`ExperimentMatrix::run_with`] over an explicit [`ArtifactIo`] —
    /// the seam the chaos campaign uses to drive whole runs through the
    /// fault-injecting [`FaultyIo`] layer.
    ///
    /// # Errors
    ///
    /// As [`ExperimentMatrix::run_with`], plus whatever I/O errors the
    /// supplied artifact layer injects.
    pub fn run_with_io(
        &self,
        options: &RunOptions,
        artifact_io: &dyn ArtifactIo,
    ) -> Result<ExperimentReport, TpsError> {
        let loaded = match &options.resume {
            Some(path) => Some(checkpoint::load(path, self, options.salvage)?),
            None => None,
        };
        let journal = match (&options.checkpoint, &options.resume) {
            (Some(path), _) => Some(checkpoint::CheckpointWriter::create(
                artifact_io,
                path,
                self,
                options.force_checkpoint,
            )?),
            (None, Some(path)) => {
                let resumed = loaded
                    .as_ref()
                    .expect("resume path implies a loaded journal");
                Some(checkpoint::CheckpointWriter::append_to(
                    artifact_io,
                    path,
                    resumed.next_seq,
                    Some(resumed.clean_len),
                )?)
            }
            (None, None) => None,
        };
        let threads = self.spec().resolved_threads(self.cells().len());
        let hooks = pool::PoolHooks {
            resume: loaded.as_ref().map(|l| &l.done),
            journal: journal.as_ref(),
            halt_after: options.halt_after,
        };
        let results = pool::run_cells(self.spec(), self.cells(), threads, &hooks);
        if let Some(journal) = &journal {
            journal.finish()?;
        }
        let mut report = ExperimentReport::aggregate(self, results);
        match &loaded {
            Some(l) if l.dropped > 0 => report.note_salvage(l.dropped),
            _ => {}
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mechanism;
    use tps_wl::SuiteScale;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::new()
            .benches(["gups", "xsbench"])
            .mechanisms([Mechanism::Thp, Mechanism::Tps, Mechanism::Only4K])
            .scale(SuiteScale::Test)
            .seed(0xfeed)
    }

    #[test]
    fn parallel_report_is_byte_identical_to_serial() {
        let serial = spec().threads(1).build().unwrap().run();
        let parallel = spec().threads(4).build().unwrap().run();
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn oom_starved_matrix_contains_every_cell() {
        // 1 MB of physical memory cannot hold any test-scale workload, so
        // every cell's machine kills its tenant at the first mmap — and
        // every cell still completes, carrying the kill as a structured
        // outcome in the serialized document.
        let report = ExperimentSpec::new()
            .bench("gups")
            .mechanisms([Mechanism::Thp, Mechanism::Tps])
            .scale(SuiteScale::Test)
            .memory(1 << 20)
            .threads(2)
            .build()
            .unwrap()
            .run();
        assert_eq!(report.cells().len(), 2);
        assert_eq!(report.error_count(), 0, "containment, not cell failure");
        for cell in report.cells() {
            let machine = cell.result.as_ref().unwrap();
            assert_eq!(machine.killed_count(), 1);
        }
        let json = report.to_json();
        assert!(json.contains("\"outcome\": \"killed\""), "{json}");
        assert!(json.contains("\"cause\": \"oom\""), "{json}");
    }

    #[test]
    fn checkpointed_run_resumes_byte_identically() {
        let dir = std::env::temp_dir().join("tps-experiment-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("matrix.ckpt");
        std::fs::remove_file(&path).ok(); // leftover journal would trip the clobber guard

        let uninterrupted = spec().threads(2).build().unwrap().run().to_json();

        // Pass 1: journal everything.
        let matrix = spec().threads(2).build().unwrap();
        let options = RunOptions {
            checkpoint: Some(path.clone()),
            ..RunOptions::default()
        };
        let journaled = matrix.run_with(&options).unwrap().to_json();
        assert_eq!(journaled, uninterrupted);

        // Pass 2: truncate the journal after 3 entries (header + 3 cells)
        // to simulate a kill, then resume: the remaining cells run, and
        // the report is still byte-identical.
        let text = std::fs::read_to_string(&path).unwrap();
        let partial: Vec<&str> = text.lines().take(4).collect();
        std::fs::write(&path, format!("{}\n", partial.join("\n"))).unwrap();
        let resumed = matrix
            .run_with(&RunOptions {
                resume: Some(path.clone()),
                ..RunOptions::default()
            })
            .unwrap()
            .to_json();
        assert_eq!(resumed, uninterrupted);

        // The journal now covers every cell: a second resume replays all
        // of them without running anything.
        let replayed = matrix
            .run_with(&RunOptions {
                resume: Some(path.clone()),
                ..RunOptions::default()
            })
            .unwrap()
            .to_json();
        assert_eq!(replayed, uninterrupted);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_includes_failed_cells() {
        let dir = std::env::temp_dir().join("tps-experiment-resume-failure");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("matrix.ckpt");
        std::fs::remove_file(&path).ok(); // leftover journal would trip the clobber guard
                                          // Every cell times out (0 ms deadline); the journal must replay
                                          // the failures exactly, attempts and all.
        let matrix = ExperimentSpec::new()
            .bench("gups")
            .mechanisms([Mechanism::Thp, Mechanism::Tps])
            .scale(SuiteScale::Test)
            .cell_timeout_ms(0)
            .retries(1)
            .threads(1)
            .build()
            .unwrap();
        let first = matrix
            .run_with(&RunOptions {
                checkpoint: Some(path.clone()),
                ..RunOptions::default()
            })
            .unwrap()
            .to_json();
        let resumed = matrix
            .run_with(&RunOptions {
                resume: Some(path.clone()),
                ..RunOptions::default()
            })
            .unwrap()
            .to_json();
        assert_eq!(first, resumed);
        assert!(resumed.contains("\"attempts\": 2"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
