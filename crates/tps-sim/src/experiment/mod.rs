//! Deterministic parallel experiment-matrix runner.
//!
//! Every paper figure is a (benchmark × mechanism × machine-config)
//! matrix whose cells are fully independent: each runs a fresh
//! [`crate::Machine`] over a seeded workload. This module turns that
//! property into wall-clock savings without touching any per-run
//! statistic:
//!
//! 1. [`ExperimentSpec`] — declarative builder describing the sweep.
//! 2. [`ExperimentMatrix`] — the validated expansion into cells, each
//!    with a seed pinned to its stable position in spec order.
//! 3. [`ExperimentMatrix::run`] — executes cells on a `std::thread`
//!    worker pool and aggregates an [`ExperimentReport`] in spec order,
//!    so parallel output is **byte-identical** to a serial run.
//!
//! A cell that panics (e.g. exhausting modeled physical memory) degrades
//! to a per-cell [`tps_core::TpsError::WorkerPanic`] entry; the rest of
//! the matrix completes. [`ExperimentReport::to_json`] serializes the
//! results plus derived paper metrics to a versioned JSON document shared
//! by the CLI, the figure harnesses, and regression tooling.
//!
//! # Example
//!
//! ```
//! use tps_sim::{ExperimentSpec, Mechanism};
//! use tps_wl::SuiteScale;
//!
//! let report = ExperimentSpec::new()
//!     .bench("gups")
//!     .mechanisms([Mechanism::Thp, Mechanism::Tps])
//!     .scale(SuiteScale::Test)
//!     .threads(2)
//!     .build()
//!     .unwrap()
//!     .run();
//! assert_eq!(report.error_count(), 0);
//! assert!(report.stats("gups", Mechanism::Tps).is_some());
//! ```

mod json;
mod pool;
mod report;
mod spec;

pub use report::{CellReport, DerivedMetrics, ExperimentReport, REPORT_SCHEMA, REPORT_VERSION};
pub use spec::{ExperimentCell, ExperimentMatrix, ExperimentSpec, DEFAULT_EXPERIMENT_SEED};

impl ExperimentMatrix {
    /// Runs every cell on the spec's worker pool and aggregates the
    /// results in stable spec order.
    ///
    /// The output — including [`ExperimentReport::to_json`] bytes — is
    /// identical for every thread count; only wall-clock time changes.
    pub fn run(&self) -> ExperimentReport {
        let threads = self.spec().resolved_threads(self.cells().len());
        let results = pool::run_cells(self.spec(), self.cells(), threads);
        ExperimentReport::aggregate(self, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mechanism;
    use tps_wl::SuiteScale;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::new()
            .benches(["gups", "xsbench"])
            .mechanisms([Mechanism::Thp, Mechanism::Tps, Mechanism::Only4K])
            .scale(SuiteScale::Test)
            .seed(0xfeed)
    }

    #[test]
    fn parallel_report_is_byte_identical_to_serial() {
        let serial = spec().threads(1).build().unwrap().run();
        let parallel = spec().threads(4).build().unwrap().run();
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn poisoned_cell_degrades_without_killing_the_matrix() {
        // 1 MB of physical memory cannot hold any test-scale workload, so
        // every cell panics inside the machine — and every cell must still
        // be reported, as an error entry.
        let report = ExperimentSpec::new()
            .bench("gups")
            .mechanisms([Mechanism::Thp, Mechanism::Tps])
            .scale(SuiteScale::Test)
            .memory(1 << 20)
            .threads(2)
            .build()
            .unwrap()
            .run();
        assert_eq!(report.cells().len(), 2);
        assert_eq!(report.error_count(), 2);
        for cell in report.cells() {
            let err = cell.result.as_ref().unwrap_err();
            assert!(
                matches!(err, tps_core::TpsError::WorkerPanic { .. }),
                "{err}"
            );
            assert!(cell.derived.is_none());
        }
        let json = report.to_json();
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("worker thread panicked"));
    }
}
