//! The machine driver: executes a workload's event stream against the OS
//! and MMU, gathering statistics.

use crate::config::MachineConfig;
use crate::mmu::{AccessLevel, Mmu};
use crate::stats::{HwFaultStats, RunStats};
use std::collections::BTreeMap;
use tps_core::{InjectorHandle, VirtAddr};
use tps_mem::BuddyAllocator;
use tps_os::Os;
use tps_tlb::{Asid, TlbStats};
use tps_wl::{Event, Workload};

/// Per-thread counters the machine accumulates while executing events.
///
/// Most callers never touch this directly — [`Machine::run`] manages one
/// internally. It is public for custom drivers built on [`Machine::step`].
#[derive(Clone, Debug, Default)]
pub struct ThreadCounters {
    /// TLB hierarchy counters.
    pub mem: TlbStats,
    /// Completed page walks.
    pub walks: u64,
    /// Page-table memory references.
    pub walk_refs: u64,
    /// Walks that ended on an alias PTE.
    pub alias_extras: u64,
    /// Hardware A/D-bit stores.
    pub ad_updates: u64,
    /// Access events executed.
    pub accesses: u64,
    /// Instructions from explicit `Compute` events.
    pub extra_insts: u64,
}

/// Measured-region plus full-run counters for one hardware thread.
///
/// `full` accumulates from the first event; `measured` is reset at each
/// [`Event::StatsBarrier`] so figures report steady-state behavior while
/// full-run totals remain available (system-time accounting, Fig. 17).
#[derive(Clone, Debug, Default)]
pub struct RunCounters {
    /// Counters since the last ROI barrier.
    pub measured: ThreadCounters,
    /// Counters over the whole run.
    pub full: ThreadCounters,
}

impl RunCounters {
    /// Records one translated access into both counter sets.
    pub fn record(&mut self, level: AccessLevel, outcome: &crate::mmu::AccessOutcome) {
        self.measured.record(level, outcome);
        self.full.record(level, outcome);
    }

    /// Adds compute instructions to both counter sets.
    pub fn compute(&mut self, insts: u64) {
        self.measured.extra_insts += insts;
        self.full.extra_insts += insts;
    }

    /// Handles the ROI barrier: restarts the measured region.
    pub fn barrier(&mut self) {
        self.measured = ThreadCounters::default();
    }
}

impl ThreadCounters {
    /// Records one translated access.
    pub fn record(&mut self, level: AccessLevel, outcome: &crate::mmu::AccessOutcome) {
        self.accesses += 1;
        self.mem.accesses += 1;
        match level {
            AccessLevel::L1 => self.mem.l1_hits += 1,
            AccessLevel::Stlb => self.mem.stlb_hits += 1,
            AccessLevel::Range => self.mem.range_hits += 1,
            AccessLevel::Walk => {
                self.mem.l2_misses += 1;
                self.walks += 1;
            }
        }
        self.walk_refs += outcome.walk_refs;
        self.alias_extras += u64::from(outcome.alias_extra);
        self.ad_updates += outcome.ad_updates;
    }
}

/// One simulated machine running one process (see [`crate::run_smt`] for the
/// two-thread variant).
///
/// # Example
///
/// ```
/// use tps_sim::{Machine, MachineConfig, Mechanism};
/// use tps_wl::{Gups, GupsParams, Initialized};
///
/// let mut machine = Machine::new(
///     MachineConfig::for_mechanism(Mechanism::Tps).with_memory(64 << 20),
/// );
/// // Initialized adds the startup page-touch sweep real applications do,
/// // so TPS promotions finish before the measured region begins.
/// let mut wl = Initialized::new(
///     Gups::new(GupsParams { table_bytes: 8 << 20, updates: 10_000, seed: 7 }));
/// let stats = machine.run(&mut wl);
/// assert_eq!(stats.mem.accesses, 10_000);
/// assert!(stats.mem.l1_hit_rate() > 0.99);
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    config: MachineConfig,
    os: Os,
    asid: Asid,
    mmu: Mmu,
    regions: BTreeMap<u32, VirtAddr>,
}

impl Machine {
    /// Builds a machine from a configuration.
    pub fn new(config: MachineConfig) -> Self {
        let buddy = config
            .initial_memory
            .clone()
            .unwrap_or_else(|| BuddyAllocator::new(config.memory_bytes));
        let mut os = Os::with_buddy(buddy, config.policy);
        os.set_background_noise(config.os_noise_period);
        if config.five_level_paging {
            os.set_page_table_levels(5);
        }
        os.set_fine_grained_ad(config.fine_grained_ad);
        let asid = os.spawn();
        let mmu = Mmu::new(&config);
        Machine {
            config,
            os,
            asid,
            mmu,
            regions: BTreeMap::new(),
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The operating system (inspection).
    pub fn os(&self) -> &Os {
        &self.os
    }

    /// The MMU (inspection).
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    /// Installs (or removes) a fault injector on every instrumented layer
    /// of this machine: the OS fault sites (buddy alloc, reserve spans,
    /// compaction steps, shootdown delivery) plus the hardware-model sites
    /// (page walker, alias-PTE installs, MMU caches, TLBs). Each site
    /// degrades on a panic-free path; the run stays correct, only slower.
    pub fn set_fault_injector(&mut self, injector: Option<InjectorHandle>) {
        self.os.set_fault_injector(injector.clone());
        self.mmu.set_fault_injector(injector);
    }

    /// Runs the memory-compaction daemon and applies the resulting TLB
    /// shootdowns (paper §III-B3). Subsequent `mmap`s find the recovered
    /// contiguity.
    ///
    /// # Errors
    ///
    /// Propagates [`tps_core::TpsError::SharedMapping`] while CoW sharing
    /// is live.
    pub fn compact(&mut self) -> Result<tps_mem::CompactionOutcome, tps_core::TpsError> {
        let (outcome, shootdowns) = self.os.compact()?;
        self.mmu.apply_shootdowns(&shootdowns);
        Ok(outcome)
    }

    /// Merges buddy-pair mappings into larger pages (paper §III-B3). TLB
    /// entries need no shootdown (smaller entries stay correct), but the
    /// paging-structure caches are flushed: cross-level merges free
    /// page-table nodes.
    pub fn merge_pages(&mut self) -> u64 {
        let merges = self.os.merge_pages(self.asid);
        if merges > 0 {
            self.mmu.flush_structure_caches();
        }
        merges
    }

    /// Executes one event. Exposed for custom drivers; most callers use
    /// [`Machine::run`].
    ///
    /// # Panics
    ///
    /// Panics on workload errors: accessing an unmapped region, unmapping
    /// an unknown region, or exhausting physical memory under an eager
    /// policy.
    pub fn step(&mut self, event: Event, counters: &mut RunCounters) {
        match event {
            Event::Mmap { region, bytes } => {
                let vma = self
                    .os
                    .mmap(self.asid, bytes)
                    .expect("machine out of physical memory");
                self.regions.insert(region, vma.base());
            }
            Event::Munmap { region } => {
                let base = self
                    .regions
                    .remove(&region)
                    .expect("munmap of unknown region");
                let shootdowns = self.os.munmap(self.asid, base).expect("region was mapped");
                self.mmu.apply_shootdowns(&shootdowns);
            }
            Event::Access {
                region,
                offset,
                write,
            } => {
                let base = self.regions[&region];
                let va = VirtAddr::new(base.value() + offset);
                let outcome = self.mmu.access(&mut self.os, self.asid, va, write);
                counters.record(outcome.level, &outcome);
            }
            Event::Compute { insts } => counters.compute(insts),
            Event::StatsBarrier => counters.barrier(),
        }
    }

    /// Runs a workload to completion, returning the collected statistics.
    pub fn run<W: Workload + ?Sized>(&mut self, workload: &mut W) -> RunStats {
        let mut counters = RunCounters::default();
        while let Some(event) = workload.next_event() {
            self.step(event, &mut counters);
        }
        self.finish(workload, counters)
    }

    pub(crate) fn finish<W: Workload + ?Sized>(
        &self,
        workload: &W,
        counters: RunCounters,
    ) -> RunStats {
        let profile = workload.profile();
        let insts = |c: &ThreadCounters| {
            (c.accesses as f64 * profile.insts_per_access) as u64 + c.extra_insts
        };
        let process = self.os.process(self.asid);
        let (walk_restarts, mmu_cache_fill_drops, tlb) = self.mmu.hw_fault_counters();
        let hw_faults = HwFaultStats {
            walk_restarts,
            alias_install_retries: process.page_table().alias_install_retries(),
            mmu_cache_fill_drops,
            tlb_fill_drops: tlb.fill_drops,
            tlb_evict_abandons: tlb.evict_abandons,
            stlb_probe_misses: tlb.stlb_probe_misses,
        };
        RunStats {
            name: profile.name.clone(),
            instructions: insts(&counters.measured),
            full_instructions: insts(&counters.full),
            profile,
            mem: counters.measured.mem,
            walks: counters.measured.walks,
            walk_refs: counters.measured.walk_refs,
            alias_extras: counters.measured.alias_extras,
            ad_updates: counters.measured.ad_updates,
            full_mem: counters.full.mem,
            full_walk_refs: counters.full.walk_refs,
            os: self.os.stats(),
            page_census: process.page_table().page_census(),
            resident_bytes: process.resident_bytes(),
            touched_bytes: process.touched_bytes(),
            mmu_cache_hits: self.mmu.mmu_cache_hits(),
            hw_faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mechanism;
    use tps_core::BASE_PAGE_SIZE;
    use tps_wl::{Gups, GupsParams, Initialized};

    fn gups(updates: u64) -> Initialized<Gups> {
        Initialized::new(Gups::new(GupsParams {
            table_bytes: 8 << 20,
            updates,
            seed: 3,
        }))
    }

    /// GUPS over a table far beyond the 2M L1 TLB's 64 MB reach, so the
    /// baseline keeps missing after full THP promotion.
    fn gups_big(updates: u64) -> Initialized<Gups> {
        Initialized::new(Gups::new(GupsParams {
            table_bytes: 256 << 20,
            updates,
            seed: 3,
        }))
    }

    fn big_machine(mechanism: Mechanism) -> Machine {
        Machine::new(
            MachineConfig::for_mechanism(mechanism)
                .with_memory(512 << 20)
                .with_verification(),
        )
    }

    fn machine(mechanism: Mechanism) -> Machine {
        Machine::new(
            MachineConfig::for_mechanism(mechanism)
                .with_memory(128 << 20)
                .with_verification(),
        )
    }

    #[test]
    fn runs_gups_under_every_mechanism() {
        for mech in [
            Mechanism::Thp,
            Mechanism::Colt,
            Mechanism::Rmm,
            Mechanism::Tps,
            Mechanism::TpsEager,
            Mechanism::Only4K,
            Mechanism::Only2M,
        ] {
            let mut m = machine(mech);
            let stats = m.run(&mut gups(5_000));
            // Measured region: the 5000 updates. Full run adds the 2048
            // init touches.
            assert_eq!(stats.mem.accesses, 5_000, "{mech}");
            assert_eq!(stats.full_mem.accesses, 2048 + 5_000, "{mech}");
            assert!(stats.full_instructions > stats.instructions, "{mech}");
            assert!(stats.resident_bytes >= 8 << 20, "{mech}");
        }
    }

    #[test]
    fn tps_beats_thp_on_l1_misses() {
        let thp = big_machine(Mechanism::Thp).run(&mut gups_big(20_000));
        let tps = big_machine(Mechanism::Tps).run(&mut gups_big(20_000));
        assert!(
            tps.mem.l1_misses() < thp.mem.l1_misses() / 4,
            "tps {} vs thp {}",
            tps.mem.l1_misses(),
            thp.mem.l1_misses()
        );
        // The 256 MB table collapses into very few tailored pages.
        assert!(tps.page_census.len() <= 3, "census {:?}", tps.page_census);
    }

    #[test]
    fn rmm_eliminates_walks_not_l1_misses() {
        let thp = big_machine(Mechanism::Thp).run(&mut gups_big(20_000));
        let rmm = big_machine(Mechanism::Rmm).run(&mut gups_big(20_000));
        // Range TLB: essentially no walks even counting initialization.
        assert!(
            rmm.full_walk_refs < thp.full_walk_refs / 4,
            "rmm {} vs thp {}",
            rmm.full_walk_refs,
            thp.full_walk_refs
        );
        // But the L1 sees no relief (range hits fill 4K entries).
        assert!(rmm.mem.l1_misses() * 2 > thp.mem.l1_misses());
    }

    #[test]
    fn perfect_l1_has_no_misses() {
        let mut config = MachineConfig::for_mechanism(Mechanism::Thp).with_memory(64 << 20);
        config.perfect_l1 = true;
        let stats = Machine::new(config).run(&mut gups(5_000));
        assert_eq!(stats.mem.l1_misses(), 0);
        assert_eq!(stats.walk_refs, 0);
    }

    #[test]
    fn perfect_l2_walks_never() {
        let mut config = MachineConfig::for_mechanism(Mechanism::Thp).with_memory(64 << 20);
        config.perfect_l2 = true;
        let stats = Machine::new(config).run(&mut gups(5_000));
        assert_eq!(stats.walks, 0);
        assert_eq!(stats.full_walk_refs, 0);
        assert!(
            stats.full_mem.l1_misses() > 0,
            "L1 still misses (compulsory)"
        );
        assert_eq!(stats.full_mem.l1_misses(), stats.full_mem.stlb_hits);
    }

    #[test]
    fn virtualized_walks_are_amplified() {
        let native = machine(Mechanism::Thp).run(&mut gups(10_000));
        let mut config = MachineConfig::for_mechanism(Mechanism::Thp).with_memory(128 << 20);
        config.virtualized = true;
        config.verify_translations = true;
        let virt = Machine::new(config).run(&mut gups(10_000));
        assert!(
            virt.full_walk_refs > native.full_walk_refs * 2,
            "2D walks amplify: {} vs {}",
            virt.full_walk_refs,
            native.full_walk_refs
        );
        assert_eq!(virt.full_mem.l1_misses(), native.full_mem.l1_misses());
    }

    #[test]
    fn munmap_shoots_down_tlbs() {
        use tps_wl::{Event, WorkloadProfile};
        struct MapUnmapMap {
            step: u32,
        }
        impl Workload for MapUnmapMap {
            fn profile(&self) -> WorkloadProfile {
                WorkloadProfile::named("map-unmap")
            }
            fn next_event(&mut self) -> Option<Event> {
                self.step += 1;
                match self.step {
                    1 => Some(Event::Mmap {
                        region: 0,
                        bytes: 64 << 10,
                    }),
                    2..=17 => Some(Event::Access {
                        region: 0,
                        offset: ((self.step - 2) as u64) * BASE_PAGE_SIZE,
                        write: true,
                    }),
                    18 => Some(Event::Munmap { region: 0 }),
                    19 => Some(Event::Mmap {
                        region: 1,
                        bytes: 64 << 10,
                    }),
                    20..=35 => Some(Event::Access {
                        region: 1,
                        offset: ((self.step - 20) as u64) * BASE_PAGE_SIZE,
                        write: true,
                    }),
                    _ => None,
                }
            }
        }
        let mut m = machine(Mechanism::Tps);
        let stats = m.run(&mut MapUnmapMap { step: 0 });
        assert_eq!(stats.mem.accesses, 32);
        assert!(stats.os.shootdowns > 0);
        // All memory from region 0 was freed and reused safely (verified
        // translations prove no stale TLB entry survived).
    }

    #[test]
    fn census_and_footprint_reported() {
        let mut m = machine(Mechanism::Tps);
        let stats = m.run(&mut gups(5_000));
        let total_pages: u64 = stats.page_census.values().sum();
        assert!(total_pages >= 1);
        assert_eq!(stats.touched_bytes, 8 << 20, "init sweep touched the table");
    }
}
