//! The machine driver: N tenant processes over one shared OS, buddy
//! allocator and TLB hierarchy, interleaved by a deterministic scheduler.
//!
//! A machine is built with [`MachineBuilder`] from one [`TenantSpec`] per
//! tenant. Each tenant is its own address space (ASID); all tenants share
//! the physical memory pool and the translation hardware, so one tenant's
//! promotions and shootdowns evict and invalidate another's TLB entries —
//! the cross-talk the paper's fragmentation story is about.

use crate::config::MachineConfig;
use crate::mmu::{AccessLevel, Mmu};
use crate::stats::{HwFaultStats, MachineRunStats, RunStats, TenantOutcome};
use std::collections::BTreeMap;
use tps_core::rng::SplitMix64;
use tps_core::{InjectorHandle, TenantFault, TenantFaultCause, TpsError, VirtAddr};
use tps_mem::BuddyAllocator;
use tps_os::{Os, OsStats};
use tps_tlb::{Asid, TlbStats};
use tps_wl::{build_seeded, Event, SuiteScale, Workload, WorkloadProfile};

/// Per-thread counters the machine accumulates while executing events.
///
/// Most callers never touch this directly — [`Machine::run`] manages one
/// per tenant. It is public for custom drivers built on [`Machine::step`].
#[derive(Clone, Debug, Default)]
pub struct ThreadCounters {
    /// TLB hierarchy counters.
    pub mem: TlbStats,
    /// Completed page walks.
    pub walks: u64,
    /// Page-table memory references.
    pub walk_refs: u64,
    /// Walks that ended on an alias PTE.
    pub alias_extras: u64,
    /// Hardware A/D-bit stores.
    pub ad_updates: u64,
    /// Access events executed.
    pub accesses: u64,
    /// Instructions from explicit `Compute` events.
    pub extra_insts: u64,
}

/// Measured-region plus full-run counters for one tenant.
///
/// `full` accumulates from the first event; `measured` is reset at each
/// [`Event::StatsBarrier`] so figures report steady-state behavior while
/// full-run totals remain available (system-time accounting, Fig. 17).
#[derive(Clone, Debug, Default)]
pub struct RunCounters {
    /// Counters since the last ROI barrier.
    pub measured: ThreadCounters,
    /// Counters over the whole run.
    pub full: ThreadCounters,
}

impl RunCounters {
    /// Records one translated access into both counter sets.
    pub fn record(&mut self, level: AccessLevel, outcome: &crate::mmu::AccessOutcome) {
        self.measured.record(level, outcome);
        self.full.record(level, outcome);
    }

    /// Adds compute instructions to both counter sets.
    pub fn compute(&mut self, insts: u64) {
        self.measured.extra_insts += insts;
        self.full.extra_insts += insts;
    }

    /// Handles the ROI barrier: restarts the measured region.
    pub fn barrier(&mut self) {
        self.measured = ThreadCounters::default();
    }
}

impl ThreadCounters {
    /// Records one translated access.
    pub fn record(&mut self, level: AccessLevel, outcome: &crate::mmu::AccessOutcome) {
        self.accesses += 1;
        self.mem.accesses += 1;
        match level {
            AccessLevel::L1 => self.mem.l1_hits += 1,
            AccessLevel::Stlb => self.mem.stlb_hits += 1,
            AccessLevel::Range => self.mem.range_hits += 1,
            AccessLevel::Walk => {
                self.mem.l2_misses += 1;
                self.walks += 1;
            }
        }
        self.walk_refs += outcome.walk_refs;
        self.alias_extras += u64::from(outcome.alias_extra);
        self.ad_updates += outcome.ad_updates;
    }
}

/// Machine-level policy for a shared-pool out-of-memory fault raised by a
/// tenant's `mmap`.
///
/// Either way the decision is a pure function of machine state, so runs
/// (and their kill sequences) stay byte-deterministic at any thread count
/// and across checkpoint resume.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum OnOom {
    /// Kill the tenant whose request failed. Nobody else is disturbed;
    /// the faulter's memory returns to the pool.
    #[default]
    FailFast,
    /// Kill the tenant with the most mapped bytes (lowest slot on a tie)
    /// and retry the failed request — a deterministic OOM killer. When
    /// the faulter itself is the largest tenant, it is the victim and the
    /// request dies with it.
    KillVictim,
}

impl OnOom {
    /// Stable label used by CLI flags and spec fingerprints.
    pub fn label(&self) -> &'static str {
        match self {
            OnOom::FailFast => "fail-fast",
            OnOom::KillVictim => "kill-victim",
        }
    }
}

impl std::fmt::Display for OnOom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for OnOom {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fail-fast" => Ok(OnOom::FailFast),
            "kill-victim" => Ok(OnOom::KillVictim),
            other => Err(format!(
                "unknown OOM policy \"{other}\" (expected fail-fast or kill-victim)"
            )),
        }
    }
}

/// Which deterministic interleaving the machine uses to pick the next
/// tenant to run one event from.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Scheduler {
    /// Strict rotation over the live tenants, in tenant order. A retired
    /// tenant drops out of the rotation; the order of the survivors is
    /// preserved. With two tenants this is exactly the SMT alternation of
    /// [`crate::run_smt`]; with one it degenerates to the old solo loop.
    #[default]
    RoundRobin,
    /// Seeded uniform pick among the live tenants on every step (a
    /// SplitMix64 stream over the given seed). Same seed, same tenant
    /// set, same interleaving — byte-deterministic like `RoundRobin`,
    /// but without rotation artifacts.
    Seeded(u64),
}

/// The scheduler's run-time state: decides, per event slot, which live
/// tenant executes next.
///
/// Declared as a hot-path entry point in `hot-paths.toml`: the decision
/// sits on the per-event dispatch loop, so it must stay free of
/// allocation, locks and dynamic dispatch.
#[derive(Clone, Debug)]
pub struct TenantScheduler {
    kind: Scheduler,
    rng: SplitMix64,
    cursor: usize,
}

impl TenantScheduler {
    fn new(kind: Scheduler) -> Self {
        let seed = match kind {
            Scheduler::RoundRobin => 0,
            Scheduler::Seeded(seed) => seed,
        };
        TenantScheduler {
            kind,
            rng: SplitMix64::new(seed),
            cursor: 0,
        }
    }

    /// Picks the next tenant as an index into the machine's live list
    /// (`0..live`). `live` must be non-zero.
    #[inline]
    pub fn next_tenant(&mut self, live: usize) -> usize {
        match self.kind {
            Scheduler::RoundRobin => {
                if self.cursor >= live {
                    self.cursor = 0;
                }
                let pick = self.cursor;
                self.cursor += 1;
                pick
            }
            Scheduler::Seeded(_) => (self.rng.next_u64() % live as u64) as usize,
        }
    }

    /// Tells the scheduler the tenant it just picked retired (was removed
    /// from the live list at `pick`), keeping the rotation aligned.
    fn tenant_retired(&mut self, pick: usize) {
        if pick < self.cursor {
            self.cursor -= 1;
        }
    }
}

/// Where a tenant's event stream comes from.
enum WorkloadSource {
    /// A caller-provided workload object.
    Boxed(Box<dyn Workload>),
    /// A suite benchmark built at [`MachineBuilder::build`] time with a
    /// per-tenant seed.
    Suite {
        name: String,
        scale: SuiteScale,
        seed: u64,
    },
    /// No events: the tenant is driven externally via [`Machine::step`].
    External(WorkloadProfile),
}

/// One tenant of a multi-tenant machine: its workload, an optional label
/// and an optional cap on how much of the shared physical memory it may
/// map.
pub struct TenantSpec {
    source: WorkloadSource,
    label: Option<String>,
    memory_cap: Option<u64>,
}

impl TenantSpec {
    /// A tenant running the given workload object.
    pub fn workload(workload: impl Workload + 'static) -> Self {
        TenantSpec {
            source: WorkloadSource::Boxed(Box::new(workload)),
            label: None,
            memory_cap: None,
        }
    }

    /// A tenant running an already boxed workload.
    pub fn boxed(workload: Box<dyn Workload>) -> Self {
        TenantSpec {
            source: WorkloadSource::Boxed(workload),
            label: None,
            memory_cap: None,
        }
    }

    /// A tenant running one suite benchmark with its own seed — the
    /// per-tenant seeded form experiment matrices use.
    ///
    /// The workload is built during [`MachineBuilder::build`]; an unknown
    /// benchmark name panics there (the experiment layer validates names
    /// before any machine is built).
    pub fn suite(name: impl Into<String>, scale: SuiteScale, seed: u64) -> Self {
        TenantSpec {
            source: WorkloadSource::Suite {
                name: name.into(),
                scale,
                seed,
            },
            label: None,
            memory_cap: None,
        }
    }

    /// A tenant with an empty event stream, for machines driven through
    /// [`Machine::step`] by an external harness or test.
    pub fn external(name: impl Into<String>) -> Self {
        TenantSpec {
            source: WorkloadSource::External(WorkloadProfile::named(name.into())),
            label: None,
            memory_cap: None,
        }
    }

    /// Labels the tenant (defaults to the workload's benchmark name).
    #[must_use]
    pub fn named(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Caps the bytes of virtual memory this tenant may have mapped at
    /// once — its share of the machine. Exceeding the cap raises a
    /// [`TenantFaultCause::CapExceeded`] fault: [`Machine::step`] returns
    /// it, and [`Machine::run`] kills the tenant and runs the survivors
    /// on.
    #[must_use]
    pub fn memory_cap(mut self, bytes: u64) -> Self {
        self.memory_cap = Some(bytes);
        self
    }
}

/// Builds a [`Machine`]: one shared [`MachineConfig`] plus one
/// [`TenantSpec`] per tenant and a [`Scheduler`].
///
/// # Example
///
/// ```
/// use tps_sim::{MachineBuilder, MachineConfig, Mechanism, TenantSpec};
/// use tps_wl::{Gups, GupsParams, Initialized};
///
/// let config = MachineConfig::for_mechanism(Mechanism::Tps).with_memory(64 << 20);
/// // Initialized adds the startup page-touch sweep real applications do,
/// // so TPS promotions finish before the measured region begins.
/// let wl = Initialized::new(
///     Gups::new(GupsParams { table_bytes: 8 << 20, updates: 10_000, seed: 7 }));
/// let stats = MachineBuilder::new(config)
///     .tenant(TenantSpec::workload(wl))
///     .build()
///     .expect("one tenant is a valid machine")
///     .run()
///     .into_solo();
/// assert_eq!(stats.mem.accesses, 10_000);
/// assert!(stats.mem.l1_hit_rate() > 0.99);
/// ```
pub struct MachineBuilder {
    config: MachineConfig,
    scheduler: Scheduler,
    reclaim_on_exit: bool,
    on_oom: OnOom,
    tenants: Vec<TenantSpec>,
}

impl MachineBuilder {
    /// Starts a builder from a machine configuration.
    pub fn new(config: MachineConfig) -> Self {
        MachineBuilder {
            config,
            scheduler: Scheduler::RoundRobin,
            reclaim_on_exit: false,
            on_oom: OnOom::FailFast,
            tenants: Vec::new(),
        }
    }

    /// Adds one tenant. Tenants get ASIDs in the order they are added.
    #[must_use]
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Adds several tenants at once.
    #[must_use]
    pub fn tenants(mut self, specs: impl IntoIterator<Item = TenantSpec>) -> Self {
        self.tenants.extend(specs);
        self
    }

    /// Selects the event interleaving (default [`Scheduler::RoundRobin`]).
    #[must_use]
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// When enabled, a tenant's remaining regions are unmapped the moment
    /// its event stream ends — modeling process exit returning memory to
    /// the shared pool (later tenants see the recovered, fragmented
    /// contiguity). Off by default: the solo and SMT harnesses keep final
    /// footprints inspectable after the run.
    #[must_use]
    pub fn reclaim_on_exit(mut self, reclaim: bool) -> Self {
        self.reclaim_on_exit = reclaim;
        self
    }

    /// Selects the machine's shared-pool OOM policy (default
    /// [`OnOom::FailFast`]).
    #[must_use]
    pub fn on_oom(mut self, policy: OnOom) -> Self {
        self.on_oom = policy;
        self
    }

    /// Builds the machine: one shared OS over one buddy allocator, one
    /// MMU, and one address space (ASID) per tenant.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::InvalidSpec`] when no tenant was added.
    ///
    /// # Panics
    ///
    /// Panics if a [`TenantSpec::suite`] names an unknown benchmark.
    pub fn build(self) -> Result<Machine, TpsError> {
        if self.tenants.is_empty() {
            return Err(TpsError::invalid_spec(
                "a machine needs at least one tenant",
            ));
        }
        let buddy = self
            .config
            .initial_memory
            .clone()
            .unwrap_or_else(|| BuddyAllocator::new(self.config.memory_bytes));
        let mut os = Os::with_buddy(buddy, self.config.policy);
        os.set_background_noise(self.config.os_noise_period);
        if self.config.five_level_paging {
            os.set_page_table_levels(5);
        }
        os.set_fine_grained_ad(self.config.fine_grained_ad);
        let mmu = Mmu::new(&self.config);
        let mut tenants = Vec::with_capacity(self.tenants.len());
        for spec in self.tenants {
            let asid = os.spawn();
            let workload: Box<dyn Workload> = match spec.source {
                WorkloadSource::Boxed(workload) => workload,
                WorkloadSource::Suite { name, scale, seed } => build_seeded(&name, scale, seed),
                WorkloadSource::External(profile) => Box::new(ExternalTenant(profile)),
            };
            let label = spec
                .label
                .unwrap_or_else(|| workload.profile().name.clone());
            tenants.push(Tenant {
                asid,
                label,
                workload,
                memory_cap: spec.memory_cap,
                mapped_bytes: 0,
                regions: BTreeMap::new(),
                counters: RunCounters::default(),
                os_attr: OsStats::default(),
                hw_attr: HwAttribution::default(),
                events: 0,
                killed: None,
                final_stats: None,
            });
        }
        let live = (0..tenants.len()).collect();
        Ok(Machine {
            config: self.config,
            os,
            mmu,
            scheduler: TenantScheduler::new(self.scheduler),
            reclaim_on_exit: self.reclaim_on_exit,
            on_oom: self.on_oom,
            tenants,
            live,
        })
    }
}

/// The empty event stream behind [`TenantSpec::external`].
struct ExternalTenant(WorkloadProfile);

impl Workload for ExternalTenant {
    fn profile(&self) -> WorkloadProfile {
        self.0.clone()
    }

    fn next_event(&mut self) -> Option<Event> {
        None
    }
}

/// Hardware counters attributed to one tenant by delta-snapshotting the
/// machine-wide monotone counters around each of its events.
#[derive(Clone, Copy, Debug, Default)]
struct HwAttribution {
    walk_restarts: u64,
    mmu_cache_fill_drops: u64,
    tlb_fill_drops: u64,
    tlb_evict_abandons: u64,
    stlb_probe_misses: u64,
    cache_hits: (u64, u64, u64),
}

/// One tenant's run-time state.
struct Tenant {
    asid: Asid,
    label: String,
    workload: Box<dyn Workload>,
    memory_cap: Option<u64>,
    mapped_bytes: u64,
    regions: BTreeMap<u32, (VirtAddr, u64)>,
    counters: RunCounters,
    os_attr: OsStats,
    hw_attr: HwAttribution,
    /// Events executed so far (the 0-based index of the next event).
    events: u64,
    /// Set when the machine killed this tenant: the fault cause and the
    /// index of the event it was executing (for an OOM-killer victim, the
    /// number of events it had executed when it was chosen).
    killed: Option<(TenantFaultCause, u64)>,
    final_stats: Option<RunStats>,
}

/// Machine-wide monotone counter snapshot, taken around each event so the
/// delta can be charged to the acting tenant.
#[derive(Clone, Copy)]
struct HwSnapshot {
    os: OsStats,
    walk_restarts: u64,
    mmu_cache_fill_drops: u64,
    tlb: tps_tlb::TlbFaultStats,
    cache_hits: (u64, u64, u64),
}

/// One simulated machine: N tenant processes sharing the OS, the physical
/// memory pool and the core's translation hardware. Built with
/// [`MachineBuilder`]; [`crate::run_smt`] is the 2-tenant shared-core
/// special case.
pub struct Machine {
    config: MachineConfig,
    os: Os,
    mmu: Mmu,
    scheduler: TenantScheduler,
    reclaim_on_exit: bool,
    on_oom: OnOom,
    tenants: Vec<Tenant>,
    /// Tenant slots whose event streams have not ended, in tenant order.
    live: Vec<usize>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("config", &self.config)
            .field("tenants", &self.tenants.len())
            .field("live", &self.live)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The operating system (inspection).
    pub fn os(&self) -> &Os {
        &self.os
    }

    /// The MMU (inspection).
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    /// Number of tenants (retired ones included).
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// One tenant's label.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn tenant_label(&self, tenant: usize) -> &str {
        &self.tenants[tenant].label
    }

    /// One tenant's live counters, for custom drivers built on
    /// [`Machine::step`].
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn counters(&self, tenant: usize) -> &RunCounters {
        &self.tenants[tenant].counters
    }

    /// Installs (or removes) a fault injector on every instrumented layer
    /// of this machine: the OS fault sites (buddy alloc, reserve spans,
    /// compaction steps, shootdown delivery) plus the hardware-model sites
    /// (page walker, alias-PTE installs, MMU caches, TLBs). Each site
    /// degrades on a panic-free path; the run stays correct, only slower.
    pub fn set_fault_injector(&mut self, injector: Option<InjectorHandle>) {
        self.os.set_fault_injector(injector.clone());
        self.mmu.set_fault_injector(injector);
    }

    /// Runs the memory-compaction daemon and applies the resulting TLB
    /// shootdowns (paper §III-B3). Subsequent `mmap`s find the recovered
    /// contiguity. Machine-level work: charged to no tenant.
    ///
    /// # Errors
    ///
    /// Propagates [`tps_core::TpsError::SharedMapping`] while CoW sharing
    /// is live.
    pub fn compact(&mut self) -> Result<tps_mem::CompactionOutcome, tps_core::TpsError> {
        let (outcome, shootdowns) = self.os.compact()?;
        self.mmu.apply_shootdowns(&shootdowns);
        Ok(outcome)
    }

    /// Merges buddy-pair mappings of one tenant into larger pages (paper
    /// §III-B3). TLB entries need no shootdown (smaller entries stay
    /// correct), but the paging-structure caches are flushed: cross-level
    /// merges free page-table nodes. The OS work is charged to the tenant.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn merge_pages(&mut self, tenant: usize) -> u64 {
        let snap = self.snapshot();
        let merges = self.os.merge_pages(self.tenants[tenant].asid);
        if merges > 0 {
            self.mmu.flush_structure_caches();
        }
        self.attribute(tenant, &snap);
        merges
    }

    fn snapshot(&self) -> HwSnapshot {
        let (walk_restarts, mmu_cache_fill_drops, tlb) = self.mmu.hw_fault_counters();
        HwSnapshot {
            os: self.os.stats(),
            walk_restarts,
            mmu_cache_fill_drops,
            tlb,
            cache_hits: self.mmu.mmu_cache_hits(),
        }
    }

    /// Charges every machine-wide counter movement since `snap` to
    /// `tenant`.
    fn attribute(&mut self, tenant: usize, snap: &HwSnapshot) {
        let os_now = self.os.stats();
        let (walk_restarts, mmu_cache_fill_drops, tlb) = self.mmu.hw_fault_counters();
        let cache_hits = self.mmu.mmu_cache_hits();
        let t = &mut self.tenants[tenant];
        t.os_attr.accumulate(&os_now.delta_since(&snap.os));
        t.hw_attr.walk_restarts += walk_restarts - snap.walk_restarts;
        t.hw_attr.mmu_cache_fill_drops += mmu_cache_fill_drops - snap.mmu_cache_fill_drops;
        t.hw_attr.tlb_fill_drops += tlb.fill_drops - snap.tlb.fill_drops;
        t.hw_attr.tlb_evict_abandons += tlb.evict_abandons - snap.tlb.evict_abandons;
        t.hw_attr.stlb_probe_misses += tlb.stlb_probe_misses - snap.tlb.stlb_probe_misses;
        t.hw_attr.cache_hits.0 += cache_hits.0 - snap.cache_hits.0;
        t.hw_attr.cache_hits.1 += cache_hits.1 - snap.cache_hits.1;
        t.hw_attr.cache_hits.2 += cache_hits.2 - snap.cache_hits.2;
    }

    /// Executes one event on behalf of `tenant`. Exposed for custom
    /// drivers; most callers use [`Machine::run`].
    ///
    /// # Errors
    ///
    /// Returns a [`TenantFault`] on workload errors: accessing or
    /// unmapping an unknown region, re-mapping a live region id, an
    /// out-of-bounds access offset, exceeding the tenant's memory cap,
    /// exhausting shared physical memory, or stepping a tenant that
    /// already retired (`tenant` out of range reports the same way). A
    /// faulting event leaves the tenant's regions untouched; whatever
    /// machine-wide counter movement the attempt caused is still
    /// attributed to the tenant. The machine itself never panics on a
    /// tenant-originated fault — [`Machine::run`] contains it by killing
    /// the tenant.
    pub fn step(&mut self, tenant: usize, event: Event) -> Result<(), TenantFault> {
        if tenant >= self.tenants.len() {
            return Err(TenantFault::new(
                TenantFaultCause::BadEvent,
                format!("tenant slot {tenant} does not exist"),
            ));
        }
        if self.tenants[tenant].final_stats.is_some() {
            return Err(TenantFault::new(
                TenantFaultCause::BadEvent,
                format!("tenant {tenant} already retired"),
            ));
        }
        let snap = self.snapshot();
        let result = self.dispatch(tenant, event);
        // Partial machine-wide movement (e.g. a failed eager mmap's
        // alloc-then-rollback churn) is charged to the tenant that
        // caused it, fault or not.
        self.attribute(tenant, &snap);
        if result.is_ok() {
            self.tenants[tenant].events += 1;
        }
        result
    }

    /// The event interpreter behind [`Machine::step`]: every workload
    /// error degrades into a [`TenantFault`] instead of a panic.
    fn dispatch(&mut self, tenant: usize, event: Event) -> Result<(), TenantFault> {
        match event {
            Event::Mmap { region, bytes } => {
                let t = &self.tenants[tenant];
                if t.regions.contains_key(&region) {
                    return Err(TenantFault::new(
                        TenantFaultCause::BadEvent,
                        format!("mmap of already-mapped region {region}"),
                    ));
                }
                if let Some(cap) = t.memory_cap {
                    if t.mapped_bytes.saturating_add(bytes) > cap {
                        return Err(TenantFault::new(
                            TenantFaultCause::CapExceeded,
                            format!(
                                "mapping {bytes} more bytes over {} already mapped exceeds \
                                 the {cap}-byte memory share",
                                t.mapped_bytes
                            ),
                        ));
                    }
                }
                let asid = t.asid;
                let vma = self.os.mmap(asid, bytes).map_err(|e| match e {
                    TpsError::OutOfMemory { .. } => TenantFault::new(
                        TenantFaultCause::Oom,
                        format!("shared pool cannot back a {bytes}-byte mapping: {e}"),
                    ),
                    other => TenantFault::new(
                        TenantFaultCause::BadEvent,
                        format!("mmap of {bytes} bytes rejected: {other}"),
                    ),
                })?;
                let t = &mut self.tenants[tenant];
                t.regions.insert(region, (vma.base(), bytes));
                t.mapped_bytes += bytes;
                Ok(())
            }
            Event::Munmap { region } => {
                let t = &self.tenants[tenant];
                let Some(&(base, bytes)) = t.regions.get(&region) else {
                    return Err(TenantFault::new(
                        TenantFaultCause::UnknownRegion,
                        format!("munmap of unknown region {region}"),
                    ));
                };
                let asid = t.asid;
                let shootdowns = self.os.munmap(asid, base).map_err(|e| {
                    TenantFault::new(
                        TenantFaultCause::BadEvent,
                        format!("munmap of region {region} rejected: {e}"),
                    )
                })?;
                self.mmu.apply_shootdowns(&shootdowns);
                let t = &mut self.tenants[tenant];
                t.regions.remove(&region);
                t.mapped_bytes -= bytes;
                Ok(())
            }
            Event::Access {
                region,
                offset,
                write,
            } => {
                let t = &self.tenants[tenant];
                let Some(&(base, bytes)) = t.regions.get(&region) else {
                    return Err(TenantFault::new(
                        TenantFaultCause::UnknownRegion,
                        format!("access to unknown region {region}"),
                    ));
                };
                if offset >= bytes {
                    return Err(TenantFault::new(
                        TenantFaultCause::BadEvent,
                        format!(
                            "access at offset {offset:#x} beyond the {bytes}-byte region {region}"
                        ),
                    ));
                }
                let asid = t.asid;
                let va = VirtAddr::new(base.value() + offset);
                let outcome =
                    self.mmu
                        .access(&mut self.os, asid, va, write)
                        .map_err(|e| match e {
                            TpsError::OutOfMemory { .. } => TenantFault::new(
                                TenantFaultCause::Oom,
                                format!("shared pool cannot back the demand fault at {va}: {e}"),
                            ),
                            other => TenantFault::new(
                                TenantFaultCause::BadEvent,
                                format!("access at {va} rejected: {other}"),
                            ),
                        })?;
                self.tenants[tenant]
                    .counters
                    .record(outcome.level, &outcome);
                Ok(())
            }
            Event::Compute { insts } => {
                self.tenants[tenant].counters.compute(insts);
                Ok(())
            }
            Event::StatsBarrier => {
                self.tenants[tenant].counters.barrier();
                Ok(())
            }
        }
    }

    /// Kills one tenant exactly as [`Machine::run`]'s containment path
    /// does: statistics frozen at the current point, ASID flushed from
    /// the shared TLBs, regions returned to the shared buddy with real
    /// shootdowns, the reclaim work attributed to the victim. For custom
    /// drivers built on [`Machine::step`] that implement their own fault
    /// policy; a slot that is out of range or already finalized is
    /// ignored.
    pub fn kill_tenant(&mut self, tenant: usize, cause: TenantFaultCause) {
        if tenant >= self.tenants.len() || self.tenants[tenant].final_stats.is_some() {
            return;
        }
        self.kill(tenant, cause);
    }

    /// Runs every tenant's event stream to completion under the
    /// scheduler, returning per-tenant statistics, per-tenant
    /// [`TenantOutcome`]s and the machine-wide rollup. Tenants that
    /// already retired (or were added as [`TenantSpec::external`] and
    /// fully stepped) are finalized as-is.
    ///
    /// A [`TenantFault`] never propagates out of `run`: the faulting
    /// tenant (or, for an OOM under [`OnOom::KillVictim`], the largest
    /// tenant) is killed — its statistics frozen at the fault point, its
    /// ASID flushed, its regions returned to the shared pool with real
    /// shootdowns, the reclaim work attributed to the victim — and the
    /// survivors run on deterministically.
    pub fn run(&mut self) -> MachineRunStats {
        while !self.live.is_empty() {
            let pick = self.scheduler.next_tenant(self.live.len());
            let slot = self.live[pick];
            match self.tenants[slot].workload.next_event() {
                Some(event) => self.execute_contained(slot, event),
                None => {
                    self.live.remove(pick);
                    self.scheduler.tenant_retired(pick);
                    self.retire(slot);
                }
            }
        }
        // Every slot left the live list through retire() or kill(), both
        // of which freeze final_stats; freeze any straggler defensively
        // so collection stays total.
        for slot in 0..self.tenants.len() {
            if self.tenants[slot].final_stats.is_none() {
                let stats = self.freeze(slot);
                self.tenants[slot].final_stats = Some(stats);
            }
        }
        let per_tenant: Vec<RunStats> = self
            .tenants
            .iter()
            .filter_map(|t| t.final_stats.clone())
            .collect();
        let outcomes = self
            .tenants
            .iter()
            .map(|t| match t.killed {
                Some((cause, at_event)) => TenantOutcome::Killed { cause, at_event },
                None => TenantOutcome::Completed,
            })
            .collect();
        let global = self.rollup(&per_tenant);
        MachineRunStats {
            global,
            per_tenant,
            outcomes,
        }
    }

    /// Executes one scheduled event under fault containment: a fault
    /// kills a tenant (per [`OnOom`]) instead of propagating.
    fn execute_contained(&mut self, slot: usize, event: Event) {
        let mut pending = Some(event);
        while let Some(event) = pending.take() {
            let Err(fault) = self.step(slot, event) else {
                return;
            };
            match (fault.cause(), self.on_oom) {
                (TenantFaultCause::Oom, OnOom::KillVictim) => {
                    let victim = self.select_victim();
                    self.kill(victim, TenantFaultCause::Oom);
                    if victim != slot {
                        // The faulter survives; retry its event against
                        // the memory the victim's death just freed.
                        pending = Some(event);
                    }
                }
                _ => self.kill(slot, fault.cause()),
            }
        }
    }

    /// The OOM killer's deterministic victim: the live tenant with the
    /// most mapped bytes, lowest slot on a tie.
    fn select_victim(&self) -> usize {
        let mut victim = self.live[0];
        for &slot in &self.live {
            if self.tenants[slot].mapped_bytes > self.tenants[victim].mapped_bytes {
                victim = slot;
            }
        }
        victim
    }

    /// Kills one live tenant: freezes its statistics at the fault point,
    /// unmaps its regions back into the shared buddy with real
    /// shootdowns (attributing the reclaim work to the victim), and
    /// flushes its ASID from the shared TLBs. The survivors keep
    /// running.
    fn kill(&mut self, slot: usize, cause: TenantFaultCause) {
        if let Some(pos) = self.live.iter().position(|&s| s == slot) {
            self.live.remove(pos);
            self.scheduler.tenant_retired(pos);
        }
        let at_event = self.tenants[slot].events;
        let stats = self.finalize(slot, true);
        self.tenants[slot].killed = Some((cause, at_event));
        self.tenants[slot].final_stats = Some(stats);
    }

    /// Finalizes a tenant whose event stream ended: freezes its
    /// statistics, then flushes its ASID from the shared TLBs (its dead
    /// translations stop occupying capacity the survivors could use) and,
    /// with [`MachineBuilder::reclaim_on_exit`], unmaps its remaining
    /// regions so the shared pool recovers the memory.
    fn retire(&mut self, slot: usize) {
        let stats = self.finalize(slot, self.reclaim_on_exit);
        self.tenants[slot].final_stats = Some(stats);
    }

    /// Shared retire/kill mechanics: freeze statistics first (footprint
    /// and census are reported as of the exit point), then optionally
    /// reclaim the tenant's regions, charging the munmaps and shootdowns
    /// to the departing tenant so the per-tenant rollup still sums
    /// exactly to the machine-wide counters, and finally retire the
    /// ASID. The frozen statistics are patched with the reclaim work
    /// before being returned.
    fn finalize(&mut self, slot: usize, reclaim: bool) -> RunStats {
        let mut stats = self.freeze(slot);
        let asid = self.tenants[slot].asid;
        self.mmu.retire_asid(asid);
        if reclaim {
            let snap = self.snapshot();
            let regions = std::mem::take(&mut self.tenants[slot].regions);
            for (base, _) in regions.into_values() {
                // A region recorded here is mapped by construction; if
                // the OS disagrees the munmap is skipped rather than
                // panicking mid-reclaim.
                if let Ok(shootdowns) = self.os.munmap(asid, base) {
                    self.mmu.apply_shootdowns(&shootdowns);
                }
            }
            self.tenants[slot].mapped_bytes = 0;
            self.attribute(slot, &snap);
            let t = &self.tenants[slot];
            stats.os = t.os_attr;
            stats.mmu_cache_hits = t.hw_attr.cache_hits;
            stats.hw_faults.walk_restarts = t.hw_attr.walk_restarts;
            stats.hw_faults.mmu_cache_fill_drops = t.hw_attr.mmu_cache_fill_drops;
            stats.hw_faults.tlb_fill_drops = t.hw_attr.tlb_fill_drops;
            stats.hw_faults.tlb_evict_abandons = t.hw_attr.tlb_evict_abandons;
            stats.hw_faults.stlb_probe_misses = t.hw_attr.stlb_probe_misses;
        }
        stats
    }

    /// Builds one tenant's final [`RunStats`] from its own counters and
    /// the machine-wide work attributed to its events.
    fn freeze(&self, slot: usize) -> RunStats {
        let t = &self.tenants[slot];
        let profile = t.workload.profile();
        let insts = |c: &ThreadCounters| {
            (c.accesses as f64 * profile.insts_per_access) as u64 + c.extra_insts
        };
        let process = self.os.process(t.asid);
        let hw_faults = HwFaultStats {
            walk_restarts: t.hw_attr.walk_restarts,
            alias_install_retries: process.page_table().alias_install_retries(),
            mmu_cache_fill_drops: t.hw_attr.mmu_cache_fill_drops,
            tlb_fill_drops: t.hw_attr.tlb_fill_drops,
            tlb_evict_abandons: t.hw_attr.tlb_evict_abandons,
            stlb_probe_misses: t.hw_attr.stlb_probe_misses,
        };
        RunStats {
            name: profile.name.clone(),
            instructions: insts(&t.counters.measured),
            full_instructions: insts(&t.counters.full),
            profile,
            mem: t.counters.measured.mem,
            walks: t.counters.measured.walks,
            walk_refs: t.counters.measured.walk_refs,
            alias_extras: t.counters.measured.alias_extras,
            ad_updates: t.counters.measured.ad_updates,
            full_mem: t.counters.full.mem,
            full_walk_refs: t.counters.full.walk_refs,
            os: t.os_attr,
            page_census: process.page_table().page_census(),
            resident_bytes: process.resident_bytes(),
            touched_bytes: process.touched_bytes(),
            mmu_cache_hits: t.hw_attr.cache_hits,
            hw_faults,
        }
    }

    /// The machine-wide rollup: counter sums across tenants, with the OS,
    /// MMU-cache and hardware-fault counters read machine-wide (for a
    /// single tenant this is exactly what the old solo driver reported).
    fn rollup(&self, per_tenant: &[RunStats]) -> RunStats {
        let (walk_restarts, mmu_cache_fill_drops, tlb) = self.mmu.hw_fault_counters();
        let hw_faults = HwFaultStats {
            walk_restarts,
            alias_install_retries: self
                .tenants
                .iter()
                .map(|t| self.os.process(t.asid).page_table().alias_install_retries())
                .sum(),
            mmu_cache_fill_drops,
            tlb_fill_drops: tlb.fill_drops,
            tlb_evict_abandons: tlb.evict_abandons,
            stlb_probe_misses: tlb.stlb_probe_misses,
        };
        if let [solo] = per_tenant {
            // Byte-exact continuity with the old single-process driver:
            // the rollup is the tenant's stats with the shared counters
            // read machine-wide.
            let mut global = solo.clone();
            global.os = self.os.stats();
            global.mmu_cache_hits = self.mmu.mmu_cache_hits();
            global.hw_faults = hw_faults;
            return global;
        }
        let sum_tlb = |field: fn(&RunStats) -> &TlbStats| {
            let mut total = TlbStats::default();
            for s in per_tenant {
                let f = field(s);
                total.accesses += f.accesses;
                total.l1_hits += f.l1_hits;
                total.stlb_hits += f.stlb_hits;
                total.range_hits += f.range_hits;
                total.l2_misses += f.l2_misses;
            }
            total
        };
        let mut page_census = BTreeMap::new();
        for s in per_tenant {
            for (order, count) in &s.page_census {
                *page_census.entry(*order).or_insert(0) += count;
            }
        }
        let name = if per_tenant.iter().all(|s| s.name == per_tenant[0].name) {
            per_tenant[0].name.clone()
        } else {
            "mixed".to_string()
        };
        RunStats {
            name: name.clone(),
            profile: weighted_profile(name, per_tenant),
            mem: sum_tlb(|s| &s.mem),
            walks: per_tenant.iter().map(|s| s.walks).sum(),
            walk_refs: per_tenant.iter().map(|s| s.walk_refs).sum(),
            alias_extras: per_tenant.iter().map(|s| s.alias_extras).sum(),
            ad_updates: per_tenant.iter().map(|s| s.ad_updates).sum(),
            os: self.os.stats(),
            instructions: per_tenant.iter().map(|s| s.instructions).sum(),
            full_instructions: per_tenant.iter().map(|s| s.full_instructions).sum(),
            full_mem: sum_tlb(|s| &s.full_mem),
            full_walk_refs: per_tenant.iter().map(|s| s.full_walk_refs).sum(),
            page_census,
            resident_bytes: per_tenant.iter().map(|s| s.resident_bytes).sum(),
            touched_bytes: per_tenant.iter().map(|s| s.touched_bytes).sum(),
            mmu_cache_hits: self.mmu.mmu_cache_hits(),
            hw_faults,
        }
    }
}

/// Access-weighted mean of the tenants' timing profiles, so the global
/// rollup remains evaluable by [`crate::TimingModel`]. Weights are
/// full-run accesses; all-idle tenants fall back to an unweighted mean.
/// The fold runs in tenant order, so the result is deterministic.
fn weighted_profile(name: String, per_tenant: &[RunStats]) -> WorkloadProfile {
    let weight = |s: &RunStats| s.full_mem.accesses as f64;
    let mut total: f64 = per_tenant.iter().map(weight).sum();
    let uniform = total == 0.0;
    if uniform {
        total = per_tenant.len() as f64;
    }
    let mean = |field: fn(&WorkloadProfile) -> f64| {
        per_tenant
            .iter()
            .map(|s| field(&s.profile) * if uniform { 1.0 } else { weight(s) })
            .sum::<f64>()
            / total
    };
    WorkloadProfile {
        name,
        base_cpi: mean(|p| p.base_cpi),
        insts_per_access: mean(|p| p.insts_per_access),
        l1_miss_criticality: mean(|p| p.l1_miss_criticality),
        walk_savable: mean(|p| p.walk_savable),
        smt_slowdown: mean(|p| p.smt_slowdown),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mechanism;
    use tps_core::BASE_PAGE_SIZE;
    use tps_wl::{Gups, GupsParams, Initialized};

    fn gups(updates: u64) -> Initialized<Gups> {
        Initialized::new(Gups::new(GupsParams {
            table_bytes: 8 << 20,
            updates,
            seed: 3,
        }))
    }

    /// GUPS over a table far beyond the 2M L1 TLB's 64 MB reach, so the
    /// baseline keeps missing after full THP promotion.
    fn gups_big(updates: u64) -> Initialized<Gups> {
        Initialized::new(Gups::new(GupsParams {
            table_bytes: 256 << 20,
            updates,
            seed: 3,
        }))
    }

    fn solo(mechanism: Mechanism, memory: u64, workload: impl Workload + 'static) -> RunStats {
        MachineBuilder::new(
            MachineConfig::for_mechanism(mechanism)
                .with_memory(memory)
                .with_verification(),
        )
        .tenant(TenantSpec::workload(workload))
        .build()
        .expect("one tenant is a valid machine")
        .run()
        .into_solo()
    }

    fn machine(mechanism: Mechanism) -> Machine {
        MachineBuilder::new(
            MachineConfig::for_mechanism(mechanism)
                .with_memory(128 << 20)
                .with_verification(),
        )
        .tenant(TenantSpec::external("driver"))
        .build()
        .expect("one tenant is a valid machine")
    }

    #[test]
    fn runs_gups_under_every_mechanism() {
        for mech in [
            Mechanism::Thp,
            Mechanism::Colt,
            Mechanism::Rmm,
            Mechanism::Tps,
            Mechanism::TpsEager,
            Mechanism::Only4K,
            Mechanism::Only2M,
        ] {
            let stats = solo(mech, 128 << 20, gups(5_000));
            // Measured region: the 5000 updates. Full run adds the 2048
            // init touches.
            assert_eq!(stats.mem.accesses, 5_000, "{mech}");
            assert_eq!(stats.full_mem.accesses, 2048 + 5_000, "{mech}");
            assert!(stats.full_instructions > stats.instructions, "{mech}");
            assert!(stats.resident_bytes >= 8 << 20, "{mech}");
        }
    }

    #[test]
    fn tps_beats_thp_on_l1_misses() {
        let thp = solo(Mechanism::Thp, 512 << 20, gups_big(20_000));
        let tps = solo(Mechanism::Tps, 512 << 20, gups_big(20_000));
        assert!(
            tps.mem.l1_misses() < thp.mem.l1_misses() / 4,
            "tps {} vs thp {}",
            tps.mem.l1_misses(),
            thp.mem.l1_misses()
        );
        // The 256 MB table collapses into very few tailored pages.
        assert!(tps.page_census.len() <= 3, "census {:?}", tps.page_census);
    }

    #[test]
    fn rmm_eliminates_walks_not_l1_misses() {
        let thp = solo(Mechanism::Thp, 512 << 20, gups_big(20_000));
        let rmm = solo(Mechanism::Rmm, 512 << 20, gups_big(20_000));
        // Range TLB: essentially no walks even counting initialization.
        assert!(
            rmm.full_walk_refs < thp.full_walk_refs / 4,
            "rmm {} vs thp {}",
            rmm.full_walk_refs,
            thp.full_walk_refs
        );
        // But the L1 sees no relief (range hits fill 4K entries).
        assert!(rmm.mem.l1_misses() * 2 > thp.mem.l1_misses());
    }

    #[test]
    fn perfect_l1_has_no_misses() {
        let mut config = MachineConfig::for_mechanism(Mechanism::Thp).with_memory(64 << 20);
        config.perfect_l1 = true;
        let stats = MachineBuilder::new(config)
            .tenant(TenantSpec::workload(gups(5_000)))
            .build()
            .unwrap()
            .run()
            .into_solo();
        assert_eq!(stats.mem.l1_misses(), 0);
        assert_eq!(stats.walk_refs, 0);
    }

    #[test]
    fn perfect_l2_walks_never() {
        let mut config = MachineConfig::for_mechanism(Mechanism::Thp).with_memory(64 << 20);
        config.perfect_l2 = true;
        let stats = MachineBuilder::new(config)
            .tenant(TenantSpec::workload(gups(5_000)))
            .build()
            .unwrap()
            .run()
            .into_solo();
        assert_eq!(stats.walks, 0);
        assert_eq!(stats.full_walk_refs, 0);
        assert!(
            stats.full_mem.l1_misses() > 0,
            "L1 still misses (compulsory)"
        );
        assert_eq!(stats.full_mem.l1_misses(), stats.full_mem.stlb_hits);
    }

    #[test]
    fn virtualized_walks_are_amplified() {
        let native = solo(Mechanism::Thp, 128 << 20, gups(10_000));
        let mut config = MachineConfig::for_mechanism(Mechanism::Thp).with_memory(128 << 20);
        config.virtualized = true;
        config.verify_translations = true;
        let virt = MachineBuilder::new(config)
            .tenant(TenantSpec::workload(gups(10_000)))
            .build()
            .unwrap()
            .run()
            .into_solo();
        assert!(
            virt.full_walk_refs > native.full_walk_refs * 2,
            "2D walks amplify: {} vs {}",
            virt.full_walk_refs,
            native.full_walk_refs
        );
        assert_eq!(virt.full_mem.l1_misses(), native.full_mem.l1_misses());
    }

    #[test]
    fn munmap_shoots_down_tlbs() {
        struct MapUnmapMap {
            step: u32,
        }
        impl Workload for MapUnmapMap {
            fn profile(&self) -> WorkloadProfile {
                WorkloadProfile::named("map-unmap")
            }
            fn next_event(&mut self) -> Option<Event> {
                self.step += 1;
                match self.step {
                    1 => Some(Event::Mmap {
                        region: 0,
                        bytes: 64 << 10,
                    }),
                    2..=17 => Some(Event::Access {
                        region: 0,
                        offset: ((self.step - 2) as u64) * BASE_PAGE_SIZE,
                        write: true,
                    }),
                    18 => Some(Event::Munmap { region: 0 }),
                    19 => Some(Event::Mmap {
                        region: 1,
                        bytes: 64 << 10,
                    }),
                    20..=35 => Some(Event::Access {
                        region: 1,
                        offset: ((self.step - 20) as u64) * BASE_PAGE_SIZE,
                        write: true,
                    }),
                    _ => None,
                }
            }
        }
        let stats = solo(Mechanism::Tps, 128 << 20, MapUnmapMap { step: 0 });
        assert_eq!(stats.mem.accesses, 32);
        assert!(stats.os.shootdowns > 0);
        // All memory from region 0 was freed and reused safely (verified
        // translations prove no stale TLB entry survived).
    }

    #[test]
    fn census_and_footprint_reported() {
        let stats = solo(Mechanism::Tps, 128 << 20, gups(5_000));
        let total_pages: u64 = stats.page_census.values().sum();
        assert!(total_pages >= 1);
        assert_eq!(stats.touched_bytes, 8 << 20, "init sweep touched the table");
    }

    #[test]
    fn step_driven_machine_matches_counters() {
        let mut m = machine(Mechanism::Tps);
        m.step(
            0,
            Event::Mmap {
                region: 9,
                bytes: 1 << 20,
            },
        )
        .unwrap();
        for i in 0..256u64 {
            m.step(
                0,
                Event::Access {
                    region: 9,
                    offset: i * BASE_PAGE_SIZE,
                    write: true,
                },
            )
            .unwrap();
        }
        assert_eq!(m.counters(0).full.accesses, 256);
        let census = m.os().process(0).page_table().page_census();
        assert_eq!(census.len(), 1);
    }

    #[test]
    fn per_tenant_stats_sum_to_global() {
        let config = MachineConfig::for_mechanism(Mechanism::Tps)
            .with_memory(256 << 20)
            .with_verification();
        let stats = MachineBuilder::new(config)
            .tenant(TenantSpec::workload(gups(2_000)))
            .tenant(TenantSpec::workload(gups(3_000)))
            .tenant(TenantSpec::workload(gups(1_000)))
            .build()
            .unwrap()
            .run();
        assert_eq!(stats.tenant_count(), 3);
        let per_sum: u64 = stats.per_tenant.iter().map(|s| s.mem.accesses).sum();
        assert_eq!(stats.global.mem.accesses, per_sum);
        assert_eq!(stats.tenant(0).mem.accesses, 2_000);
        assert_eq!(stats.tenant(1).mem.accesses, 3_000);
        assert_eq!(stats.tenant(2).mem.accesses, 1_000);
        // Attributed OS work adds up to the machine-wide totals: every
        // event belongs to exactly one tenant.
        let fault_sum: u64 = stats.per_tenant.iter().map(|s| s.os.faults).sum();
        assert_eq!(stats.global.os.faults, fault_sum);
        let cycle_sum: u64 = stats.per_tenant.iter().map(|s| s.os.op_cycles).sum();
        assert_eq!(stats.global.os.op_cycles, cycle_sum);
    }

    #[test]
    fn round_robin_and_seeded_schedulers_are_deterministic() {
        let run = |scheduler| {
            let config = MachineConfig::for_mechanism(Mechanism::Tps)
                .with_memory(256 << 20)
                .with_verification();
            MachineBuilder::new(config)
                .tenant(TenantSpec::workload(gups(2_000)))
                .tenant(TenantSpec::workload(gups(2_000)))
                .scheduler(scheduler)
                .build()
                .unwrap()
                .run()
        };
        for sched in [Scheduler::RoundRobin, Scheduler::Seeded(42)] {
            let a = run(sched);
            let b = run(sched);
            assert_eq!(a.global.mem, b.global.mem, "{sched:?}");
            assert_eq!(a.global.page_census, b.global.page_census, "{sched:?}");
            for (x, y) in a.per_tenant.iter().zip(&b.per_tenant) {
                assert_eq!(x.mem, y.mem, "{sched:?}");
            }
        }
    }

    #[test]
    fn memory_cap_overrun_faults_without_panicking() {
        let config = MachineConfig::for_mechanism(Mechanism::Tps).with_memory(64 << 20);
        let mut m = MachineBuilder::new(config)
            .tenant(TenantSpec::external("greedy").memory_cap(1 << 20))
            .build()
            .unwrap();
        m.step(
            0,
            Event::Mmap {
                region: 0,
                bytes: 512 << 10,
            },
        )
        .unwrap();
        let fault = m
            .step(
                0,
                Event::Mmap {
                    region: 1,
                    bytes: 1 << 20,
                },
            )
            .unwrap_err();
        assert_eq!(fault.cause(), TenantFaultCause::CapExceeded);
        // The failed mmap changed nothing: the tenant still holds exactly
        // its first region and can keep executing within its share.
        m.step(
            0,
            Event::Access {
                region: 0,
                offset: 0,
                write: true,
            },
        )
        .unwrap();
        assert_eq!(m.counters(0).full.accesses, 1);
    }

    #[test]
    fn malformed_events_fault_with_structured_causes() {
        let mut m = machine(Mechanism::Tps);
        let step_err = |m: &mut Machine, e| m.step(0, e).unwrap_err().cause();
        assert_eq!(
            step_err(&mut m, Event::Munmap { region: 7 }),
            TenantFaultCause::UnknownRegion
        );
        assert_eq!(
            step_err(
                &mut m,
                Event::Access {
                    region: 7,
                    offset: 0,
                    write: false,
                }
            ),
            TenantFaultCause::UnknownRegion
        );
        m.step(
            0,
            Event::Mmap {
                region: 7,
                bytes: 64 << 10,
            },
        )
        .unwrap();
        assert_eq!(
            step_err(
                &mut m,
                Event::Mmap {
                    region: 7,
                    bytes: 64 << 10,
                }
            ),
            TenantFaultCause::BadEvent
        );
        assert_eq!(
            step_err(
                &mut m,
                Event::Access {
                    region: 7,
                    offset: 64 << 10,
                    write: false,
                }
            ),
            TenantFaultCause::BadEvent
        );
        // Out-of-range and retired-tenant steps degrade the same way.
        assert!(m.step(99, Event::StatsBarrier).is_err());
        let stats = m.run();
        assert_eq!(stats.outcomes, vec![TenantOutcome::Completed]);
        assert!(m.step(0, Event::StatsBarrier).is_err(), "already retired");
    }

    /// A workload that maps `chunk`-byte regions forever without ever
    /// unmapping — guaranteed to hit a cap or exhaust the pool.
    struct Hog {
        chunk: u64,
        touches: u32,
        step: u64,
    }

    impl Workload for Hog {
        fn profile(&self) -> WorkloadProfile {
            WorkloadProfile::named("hog")
        }

        fn next_event(&mut self) -> Option<Event> {
            let step = self.step;
            self.step += 1;
            let period = u64::from(self.touches) + 1;
            let chunk_no = step / period;
            Some(match step % period {
                0 => Event::Mmap {
                    region: chunk_no as u32,
                    bytes: self.chunk,
                },
                i => Event::Access {
                    region: chunk_no as u32,
                    offset: (i - 1) * BASE_PAGE_SIZE,
                    write: true,
                },
            })
        }
    }

    #[test]
    fn run_contains_a_cap_overrun_and_survivors_complete() {
        let config = MachineConfig::for_mechanism(Mechanism::Tps)
            .with_memory(128 << 20)
            .with_verification();
        let stats = MachineBuilder::new(config)
            .tenant(
                TenantSpec::workload(Hog {
                    chunk: 1 << 20,
                    touches: 4,
                    step: 0,
                })
                .named("noisy")
                .memory_cap(4 << 20),
            )
            .tenant(TenantSpec::workload(gups(2_000)))
            .build()
            .unwrap()
            .run();
        let TenantOutcome::Killed { cause, at_event } = stats.outcomes[0] else {
            panic!("the hog must be killed, got {:?}", stats.outcomes[0]);
        };
        assert_eq!(cause, TenantFaultCause::CapExceeded);
        assert!(at_event > 0, "the hog executed events before its kill");
        assert_eq!(stats.outcomes[1], TenantOutcome::Completed);
        assert_eq!(stats.tenant(1).mem.accesses, 2_000, "survivor unharmed");
        assert_eq!(stats.killed_count(), 1);
        // The victim's memory went back to the shared pool.
        assert!(stats.tenant(0).resident_bytes > 0, "frozen at fault point");
        assert_eq!(stats.tenant(0).os.munmaps, 4, "reclaim charged to victim");
    }

    #[test]
    fn oom_fail_fast_kills_the_faulter_and_kill_victim_kills_the_largest() {
        let hog = || {
            TenantSpec::workload(Hog {
                chunk: 2 << 20,
                touches: 2,
                step: 0,
            })
        };
        let small = || TenantSpec::workload(gups(300));
        let run = |policy| {
            let config = MachineConfig::for_mechanism(Mechanism::TpsEager)
                .with_memory(32 << 20)
                .with_verification();
            MachineBuilder::new(config)
                .tenant(small())
                .tenant(hog())
                .on_oom(policy)
                .build()
                .unwrap()
                .run()
        };
        // Fail-fast: whoever's mmap fails dies — here the hog, whose
        // endless mapping is what exhausts the pool.
        let ff = run(OnOom::FailFast);
        assert!(ff.killed_count() >= 1, "someone must die");
        // Kill-victim: the hog is always the largest mapper, so the gups
        // tenant survives to completion.
        let kv = run(OnOom::KillVictim);
        let TenantOutcome::Killed { cause, .. } = kv.outcomes[1] else {
            panic!("the hog must be the OOM victim, got {:?}", kv.outcomes[1]);
        };
        assert_eq!(cause, TenantFaultCause::Oom);
        assert_eq!(kv.outcomes[0], TenantOutcome::Completed);
        assert_eq!(kv.tenant(0).mem.accesses, 300);
    }

    #[test]
    fn kill_sequences_are_deterministic() {
        let run = || {
            let config = MachineConfig::for_mechanism(Mechanism::TpsEager)
                .with_memory(24 << 20)
                .with_verification();
            MachineBuilder::new(config)
                .tenant(TenantSpec::workload(gups(500)))
                .tenant(TenantSpec::workload(Hog {
                    chunk: 2 << 20,
                    touches: 2,
                    step: 0,
                }))
                .tenant(TenantSpec::workload(gups(700)))
                .scheduler(Scheduler::Seeded(99))
                .on_oom(OnOom::KillVictim)
                .build()
                .unwrap()
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcomes, b.outcomes);
        assert!(a.killed_count() >= 1);
        for (x, y) in a.per_tenant.iter().zip(&b.per_tenant) {
            assert_eq!(x.mem, y.mem);
            assert_eq!(x.os, y.os);
        }
    }

    #[test]
    fn per_tenant_os_work_sums_to_machine_totals_with_reclaim_and_kills() {
        let config = MachineConfig::for_mechanism(Mechanism::Tps)
            .with_memory(128 << 20)
            .with_verification();
        let mut m = MachineBuilder::new(config)
            .tenant(TenantSpec::workload(gups(1_000)))
            .tenant(
                TenantSpec::workload(Hog {
                    chunk: 1 << 20,
                    touches: 4,
                    step: 0,
                })
                .memory_cap(3 << 20),
            )
            .tenant(TenantSpec::workload(gups(2_000)))
            .reclaim_on_exit(true)
            .build()
            .unwrap();
        let stats = m.run();
        assert_eq!(stats.killed_count(), 1);
        // Every OS counter — including the munmaps and shootdowns of the
        // exit/kill reclaims — is attributed to exactly one tenant.
        let machine_wide = m.os().stats();
        let sum = |f: fn(&OsStats) -> u64| stats.per_tenant.iter().map(|s| f(&s.os)).sum::<u64>();
        assert_eq!(sum(|o| o.mmaps), machine_wide.mmaps);
        assert_eq!(sum(|o| o.munmaps), machine_wide.munmaps);
        assert_eq!(sum(|o| o.faults), machine_wide.faults);
        assert_eq!(sum(|o| o.shootdowns), machine_wide.shootdowns);
        assert_eq!(sum(|o| o.op_cycles), machine_wide.op_cycles);
        assert_eq!(stats.global.os.munmaps, machine_wide.munmaps);
        // Reclaim really happened: nobody holds memory after the run.
        for slot in 0..3 {
            assert_eq!(m.os().process(slot as Asid).resident_bytes(), 0);
        }
    }

    #[test]
    fn reclaim_on_exit_returns_memory_to_the_pool() {
        let config = MachineConfig::for_mechanism(Mechanism::Tps).with_memory(128 << 20);
        let mut m = MachineBuilder::new(config)
            .tenant(TenantSpec::workload(gups(500)))
            .reclaim_on_exit(true)
            .build()
            .unwrap();
        let stats = m.run().into_solo();
        // Stats were frozen at exit (the table was still resident)...
        assert!(stats.resident_bytes >= 8 << 20);
        // ...then the exit reclaimed it.
        assert_eq!(m.os().process(0).resident_bytes(), 0);
    }

    #[test]
    fn builder_rejects_zero_tenants() {
        let config = MachineConfig::for_mechanism(Mechanism::Tps).with_memory(64 << 20);
        assert!(MachineBuilder::new(config).build().is_err());
    }

    #[test]
    fn thousand_tenant_machine_completes_and_attributes_all_work() {
        let config = MachineConfig::for_mechanism(Mechanism::Tps).with_memory(2 << 30);
        let stats = MachineBuilder::new(config)
            .tenants((0..1000).map(|i| {
                TenantSpec::workload(Gups::new(GupsParams {
                    table_bytes: 128 << 10,
                    updates: 40,
                    seed: 0x5eed + i,
                }))
            }))
            .scheduler(Scheduler::Seeded(17))
            .build()
            .unwrap()
            .run();
        assert_eq!(stats.tenant_count(), 1000);
        for (slot, t) in stats.per_tenant.iter().enumerate() {
            assert!(t.mem.accesses > 0, "tenant {slot} did no work");
        }
        let sum: u64 = stats.per_tenant.iter().map(|t| t.mem.accesses).sum();
        assert_eq!(sum, stats.global.mem.accesses);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        /// Tenant A's translations must never resolve through tenant B's
        /// TLB entries, even while interleaved munmaps fire ASID-targeted
        /// shootdowns through the shared hierarchy. Verification mode
        /// cross-checks every TLB-provided translation against the acting
        /// tenant's own page table, so one translation served from the
        /// other address space's entry panics the machine.
        #[test]
        fn tenants_never_resolve_through_each_others_tlb_entries(
            seed in 0u64..1 << 20,
            script in proptest::collection::vec((0usize..2usize, 0u8..8u8), 40..160),
        ) {
            let config = MachineConfig::for_mechanism(Mechanism::Tps)
                .with_memory(256 << 20)
                .with_verification();
            let mut m = MachineBuilder::new(config)
                .tenant(TenantSpec::external("a"))
                .tenant(TenantSpec::external("b"))
                .build()
                .unwrap();
            let mut rng = SplitMix64::new(seed);
            let mut live: [Vec<(u32, u64)>; 2] = [Vec::new(), Vec::new()];
            let mut next_region = [0u32; 2];
            for (tenant, op) in script {
                match op {
                    // Map a fresh region (64 KB .. 2 MB).
                    0 | 1 if live[tenant].len() < 6 => {
                        let bytes = (64 << 10) + rng.next_u64() % (2 << 20);
                        let region = next_region[tenant];
                        next_region[tenant] += 1;
                        live[tenant].push((region, bytes));
                        m.step(tenant, Event::Mmap { region, bytes }).unwrap();
                    }
                    // Unmap: shoots this ASID down in the shared TLBs.
                    2 if !live[tenant].is_empty() => {
                        let i = (rng.next_u64() % live[tenant].len() as u64) as usize;
                        let (region, _) = live[tenant].swap_remove(i);
                        m.step(tenant, Event::Munmap { region }).unwrap();
                    }
                    // Access a live region; verification asserts the
                    // translation came from this tenant's page table.
                    _ if !live[tenant].is_empty() => {
                        let i = (rng.next_u64() % live[tenant].len() as u64) as usize;
                        let (region, bytes) = live[tenant][i];
                        let offset = rng.next_u64() % bytes;
                        let write = rng.next_u64() % 2 == 0;
                        m.step(tenant, Event::Access { region, offset, write })
                            .unwrap();
                    }
                    _ => {}
                }
            }
            // Both tenants did verified work through the shared hierarchy.
            let a = m.counters(0).full.accesses;
            let b = m.counters(1).full.accesses;
            proptest::prop_assert_eq!(a + b, a.max(b) + a.min(b));
        }
    }
}
