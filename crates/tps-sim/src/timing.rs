//! The execution-time model: `T = T_IDEAL + T_L1DTLBM + T_PW` (+ system
//! time), exactly the decomposition the paper uses in §IV-B.
//!
//! The paper measures `T_L1DTLBM` with ZSim and calibrates the
//! savable-walk-cycle fraction from hardware performance counters; here
//! both per-workload factors live in the [`tps_wl::WorkloadProfile`]
//! (documented substitution, DESIGN.md §2).

use crate::stats::RunStats;

/// Cycle-cost constants of the timing model.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TimingModel {
    /// Cycles to complete a translation from the STLB after an L1 miss.
    pub stlb_hit_cycles: f64,
    /// Average cycles per page-walk memory reference (PTE reads hit the
    /// cache hierarchy at mixed levels).
    pub walk_ref_cycles: f64,
    /// Extra cycles for a Range-TLB-provided translation (PTE construction
    /// after the parallel STLB/Range lookup).
    pub range_hit_cycles: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            stlb_hit_cycles: 9.0,
            walk_ref_cycles: 25.0,
            // The Range TLB is probed in parallel with the STLB; PTE
            // construction adds a trivial extra on top of the same latency
            // class.
            range_hit_cycles: 10.0,
        }
    }
}

/// The decomposed execution time of one run, in cycles.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TimingBreakdown {
    /// Ideal execution time (no translation overhead).
    pub t_ideal: f64,
    /// Time lost to L1 TLB misses that hit the L2 level.
    pub t_l1dtlbm: f64,
    /// Time lost to page walks (savable fraction of walker cycles).
    pub t_pw: f64,
    /// OS (system) time.
    pub t_os: f64,
    /// Raw page-walker-active cycles (the hardware counter `PWC`; only the
    /// savable fraction appears in `t_pw`).
    pub pwc: f64,
}

impl TimingBreakdown {
    /// Total execution time.
    pub fn total(&self) -> f64 {
        self.t_ideal + self.t_l1dtlbm + self.t_pw + self.t_os
    }

    /// Fraction of execution time the walker was active (paper Fig. 2's
    /// counter-based metric).
    pub fn walk_active_fraction(&self) -> f64 {
        self.pwc / self.total()
    }

    /// Fraction of execution time spent in the OS (paper Fig. 17).
    pub fn system_fraction(&self) -> f64 {
        self.t_os / self.total()
    }

    /// Speedup of `self` relative to `baseline` (>1 means faster).
    pub fn speedup_over(&self, baseline: &TimingBreakdown) -> f64 {
        baseline.total() / self.total()
    }
}

impl TimingModel {
    /// Evaluates the decomposition for the measured region of one run.
    ///
    /// `smt` applies the workload's core-sharing slowdown to the ideal
    /// term (non-TLB contention), as in the paper's Fig. 14 discussion.
    /// OS time is excluded here (it belongs to initialization; see
    /// [`TimingModel::evaluate_full_run`]).
    pub fn evaluate(&self, stats: &RunStats, smt: bool) -> TimingBreakdown {
        self.breakdown(
            stats,
            smt,
            stats.instructions,
            &stats.mem,
            stats.walk_refs,
            0,
        )
    }

    /// Evaluates the decomposition over the whole run, initialization and
    /// OS (system) time included — the basis of the paper's Fig. 17.
    pub fn evaluate_full_run(&self, stats: &RunStats, smt: bool) -> TimingBreakdown {
        self.breakdown(
            stats,
            smt,
            stats.full_instructions,
            &stats.full_mem,
            stats.full_walk_refs,
            stats.os.op_cycles,
        )
    }

    fn breakdown(
        &self,
        stats: &RunStats,
        smt: bool,
        instructions: u64,
        mem: &tps_tlb::TlbStats,
        walk_refs: u64,
        os_cycles: u64,
    ) -> TimingBreakdown {
        let p = &stats.profile;
        let smt_factor = if smt { p.smt_slowdown } else { 1.0 };
        let t_ideal = instructions as f64 * p.base_cpi * smt_factor;
        let t_l1dtlbm = (mem.stlb_hits as f64 * self.stlb_hit_cycles
            + mem.range_hits as f64 * self.range_hit_cycles)
            * p.l1_miss_criticality;
        let pwc = walk_refs as f64 * self.walk_ref_cycles;
        let t_pw = pwc * p.walk_savable;
        TimingBreakdown {
            t_ideal,
            t_l1dtlbm,
            t_pw,
            t_os: os_cycles as f64,
            pwc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tps_os::OsStats;
    use tps_tlb::TlbStats;
    use tps_wl::WorkloadProfile;

    fn stats(l1_misses: u64, walk_refs: u64) -> RunStats {
        let mut profile = WorkloadProfile::named("t");
        profile.base_cpi = 0.5;
        profile.insts_per_access = 4.0;
        profile.l1_miss_criticality = 0.5;
        profile.walk_savable = 0.8;
        profile.smt_slowdown = 1.4;
        RunStats {
            name: "t".into(),
            profile,
            mem: TlbStats {
                accesses: 1_000_000,
                l1_hits: 1_000_000 - l1_misses,
                stlb_hits: l1_misses,
                range_hits: 0,
                l2_misses: 0,
            },
            walks: walk_refs / 4,
            walk_refs,
            alias_extras: 0,
            ad_updates: 0,
            os: OsStats {
                op_cycles: 10_000,
                ..Default::default()
            },
            instructions: 4_000_000,
            full_instructions: 4_000_000,
            full_mem: TlbStats {
                accesses: 1_000_000,
                l1_hits: 1_000_000 - l1_misses,
                stlb_hits: l1_misses,
                range_hits: 0,
                l2_misses: 0,
            },
            full_walk_refs: walk_refs,
            page_census: BTreeMap::new(),
            resident_bytes: 0,
            touched_bytes: 0,
            mmu_cache_hits: (0, 0, 0),
            hw_faults: crate::stats::HwFaultStats::default(),
        }
    }

    #[test]
    fn decomposition_adds_up() {
        let model = TimingModel::default();
        let b = model.evaluate(&stats(10_000, 40_000), false);
        assert!((b.total() - (b.t_ideal + b.t_l1dtlbm + b.t_pw + b.t_os)).abs() < 1e-6);
        assert!(b.t_ideal > 0.0 && b.t_l1dtlbm > 0.0 && b.t_pw > 0.0);
        // t_ideal = 4M * 0.5 = 2M; t_l1dtlbm = 10k * 9 * 0.5 = 45k.
        assert!((b.t_ideal - 2_000_000.0).abs() < 1.0);
        assert!((b.t_l1dtlbm - 45_000.0).abs() < 1.0);
        assert!((b.pwc - 1_000_000.0).abs() < 1.0);
        assert!((b.t_pw - 800_000.0).abs() < 1.0);
    }

    #[test]
    fn fewer_misses_means_speedup() {
        let model = TimingModel::default();
        let base = model.evaluate(&stats(50_000, 200_000), false);
        let tps = model.evaluate(&stats(1_000, 4_000), false);
        let speedup = tps.speedup_over(&base);
        assert!(speedup > 1.5, "speedup {speedup}");
        assert!(base.speedup_over(&base) == 1.0);
    }

    #[test]
    fn smt_scales_ideal_time() {
        let model = TimingModel::default();
        let native = model.evaluate(&stats(0, 0), false);
        let smt = model.evaluate(&stats(0, 0), true);
        assert!((smt.t_ideal / native.t_ideal - 1.4).abs() < 1e-9);
    }

    #[test]
    fn fractions_bounded() {
        let model = TimingModel::default();
        let b = model.evaluate(&stats(10_000, 40_000), false);
        assert!(b.walk_active_fraction() > 0.0 && b.walk_active_fraction() < 1.0);
        assert_eq!(b.system_fraction(), 0.0, "OS time is a full-run quantity");
        let full = model.evaluate_full_run(&stats(10_000, 40_000), false);
        assert!(full.system_fraction() > 0.0 && full.system_fraction() < 0.05);
        assert!((full.t_os - 10_000.0).abs() < 1e-9);
    }
}
