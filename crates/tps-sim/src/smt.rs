//! SMT model: two hardware threads sharing one core's TLB hierarchy and
//! MMU caches, each running its own process (paper Figs. 2 and 14).
//!
//! This is the degenerate two-tenant case of the multi-tenant machine:
//! [`run_smt`] builds a two-tenant [`crate::MachineBuilder`] under the
//! round-robin scheduler, whose strict alternation is exactly the
//! fine-grained SMT interleaving. All counters are defined once, in the
//! machine; this module only re-labels the two tenants as hardware
//! threads.

use crate::config::MachineConfig;
use crate::machine::{MachineBuilder, TenantSpec};
use crate::stats::RunStats;
use tps_wl::Workload;

/// Statistics of one SMT co-run: one [`RunStats`] per hardware thread,
/// with OS work and hardware-fault counters attributed to the thread
/// whose event caused them.
#[derive(Clone, Debug)]
pub struct SmtRunStats {
    /// The primary thread's statistics.
    pub primary: RunStats,
    /// The sibling thread's statistics.
    pub sibling: RunStats,
}

/// Runs two workloads as SMT siblings sharing TLBs, MMU caches and
/// physical memory; events interleave round-robin, modeling the
/// fine-grained resource sharing that doubles TLB pressure.
///
/// Each thread's translation behavior is counted separately so per-
/// benchmark figures can be reported for the primary thread.
///
/// # Example
///
/// ```
/// use tps_sim::{run_smt, MachineConfig, Mechanism};
/// use tps_wl::{Gups, GupsParams};
///
/// let config = MachineConfig::for_mechanism(Mechanism::Thp).with_memory(64 << 20);
/// let a = Gups::new(GupsParams { table_bytes: 4 << 20, updates: 5_000, seed: 1 });
/// let b = Gups::new(GupsParams { table_bytes: 4 << 20, updates: 5_000, seed: 2 });
/// let stats = run_smt(config, a, b);
/// assert_eq!(stats.primary.mem.accesses, 5_000);
/// ```
///
/// Tenant faults are contained exactly like [`crate::Machine::run`]:
/// a sibling that overruns memory is killed and the other thread's run
/// completes. SMT cells report only the primary thread's statistics.
pub fn run_smt(
    config: MachineConfig,
    primary: impl Workload + 'static,
    sibling: impl Workload + 'static,
) -> SmtRunStats {
    let stats = MachineBuilder::new(config)
        .tenant(TenantSpec::workload(primary))
        .tenant(TenantSpec::workload(sibling))
        .build()
        .expect("two tenants form a valid machine")
        .run();
    let mut per_tenant = stats.per_tenant;
    let sibling = per_tenant.pop().expect("two tenants ran");
    let primary = per_tenant.pop().expect("two tenants ran");
    SmtRunStats { primary, sibling }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mechanism;
    use tps_wl::{Gups, GupsParams, Initialized};

    fn gups(seed: u64) -> Initialized<Gups> {
        // Each thread's table exceeds the 2M L1 TLB reach on its own, so
        // sharing the structures is visible in the miss counts.
        Initialized::new(Gups::new(GupsParams {
            table_bytes: 128 << 20,
            updates: 20_000,
            seed,
        }))
    }

    fn config(mech: Mechanism) -> MachineConfig {
        MachineConfig::for_mechanism(mech)
            .with_memory(512 << 20)
            .with_verification()
    }

    #[test]
    fn smt_interference_increases_misses() {
        let solo = MachineBuilder::new(config(Mechanism::Thp))
            .tenant(TenantSpec::workload(gups(1)))
            .build()
            .unwrap()
            .run()
            .into_solo();
        let smt = run_smt(config(Mechanism::Thp), gups(1), gups(2));
        assert_eq!(smt.primary.mem.accesses, solo.mem.accesses);
        assert!(
            smt.primary.mem.l1_misses() > solo.mem.l1_misses(),
            "sharing the TLB must hurt: smt {} vs solo {}",
            smt.primary.mem.l1_misses(),
            solo.mem.l1_misses()
        );
    }

    #[test]
    fn smt_threads_translate_correctly_in_isolation() {
        // verify_translations is on: any ASID mix-up would assert inside.
        let stats = run_smt(config(Mechanism::Tps), gups(3), gups(4));
        assert_eq!(stats.primary.mem.accesses, stats.sibling.mem.accesses);
        assert!(stats.primary.mem.l1_hit_rate() > 0.9);
    }

    #[test]
    fn tps_suffers_less_under_smt_than_thp() {
        let thp = run_smt(config(Mechanism::Thp), gups(5), gups(6));
        let tps = run_smt(config(Mechanism::Tps), gups(5), gups(6));
        assert!(
            tps.primary.mem.l1_misses() < thp.primary.mem.l1_misses(),
            "tps {} vs thp {}",
            tps.primary.mem.l1_misses(),
            thp.primary.mem.l1_misses()
        );
    }

    #[test]
    fn smt_os_work_is_attributed_not_duplicated() {
        let stats = run_smt(config(Mechanism::Tps), gups(7), gups(8));
        // Symmetric workloads: each thread owns roughly half the faults,
        // and neither sees the machine-wide total (the old double-count).
        let total = stats.primary.os.faults + stats.sibling.os.faults;
        assert!(stats.primary.os.faults > 0);
        assert!(stats.sibling.os.faults > 0);
        assert!(stats.primary.os.faults < total);
    }
}
