//! SMT model: two hardware threads sharing one core's TLB hierarchy and
//! MMU caches, each running its own process (paper Figs. 2 and 14).

use crate::config::MachineConfig;
use crate::machine::{RunCounters, ThreadCounters};
use crate::mmu::Mmu;
use crate::stats::RunStats;
use std::collections::BTreeMap;
use tps_core::VirtAddr;
use tps_mem::BuddyAllocator;
use tps_os::Os;
use tps_tlb::Asid;
use tps_wl::{Event, Workload};

/// Statistics of one SMT co-run: one [`RunStats`] per hardware thread.
#[derive(Clone, Debug)]
pub struct SmtRunStats {
    /// The primary thread's statistics.
    pub primary: RunStats,
    /// The sibling thread's statistics.
    pub sibling: RunStats,
}

/// Runs two workloads as SMT siblings sharing TLBs, MMU caches and
/// physical memory; events interleave round-robin, modeling the
/// fine-grained resource sharing that doubles TLB pressure.
///
/// Each thread's translation behavior is counted separately so per-
/// benchmark figures can be reported for the primary thread.
///
/// # Example
///
/// ```
/// use tps_sim::{run_smt, MachineConfig, Mechanism};
/// use tps_wl::{Gups, GupsParams};
///
/// let config = MachineConfig::for_mechanism(Mechanism::Thp).with_memory(64 << 20);
/// let mut a = Gups::new(GupsParams { table_bytes: 4 << 20, updates: 5_000, seed: 1 });
/// let mut b = Gups::new(GupsParams { table_bytes: 4 << 20, updates: 5_000, seed: 2 });
/// let stats = run_smt(config, &mut a, &mut b);
/// assert_eq!(stats.primary.mem.accesses, 5_000);
/// ```
pub fn run_smt<A, B>(config: MachineConfig, primary: &mut A, sibling: &mut B) -> SmtRunStats
where
    A: Workload + ?Sized,
    B: Workload + ?Sized,
{
    let buddy = config
        .initial_memory
        .clone()
        .unwrap_or_else(|| BuddyAllocator::new(config.memory_bytes));
    let mut os = Os::with_buddy(buddy, config.policy);
    os.set_background_noise(config.os_noise_period);
    let asid_a = os.spawn();
    let asid_b = os.spawn();
    let mut mmu = Mmu::new(&config);

    let mut regions_a: BTreeMap<u32, VirtAddr> = BTreeMap::new();
    let mut regions_b: BTreeMap<u32, VirtAddr> = BTreeMap::new();
    let mut counters_a = RunCounters::default();
    let mut counters_b = RunCounters::default();

    let mut a_done = false;
    let mut b_done = false;
    while !(a_done && b_done) {
        if !a_done {
            match primary.next_event() {
                Some(ev) => step(
                    &mut os,
                    &mut mmu,
                    asid_a,
                    &mut regions_a,
                    &mut counters_a,
                    ev,
                ),
                None => a_done = true,
            }
        }
        if !b_done {
            match sibling.next_event() {
                Some(ev) => step(
                    &mut os,
                    &mut mmu,
                    asid_b,
                    &mut regions_b,
                    &mut counters_b,
                    ev,
                ),
                None => b_done = true,
            }
        }
    }

    SmtRunStats {
        primary: finish(&os, &mmu, asid_a, primary, counters_a),
        sibling: finish(&os, &mmu, asid_b, sibling, counters_b),
    }
}

fn step(
    os: &mut Os,
    mmu: &mut Mmu,
    asid: Asid,
    regions: &mut BTreeMap<u32, VirtAddr>,
    counters: &mut RunCounters,
    event: Event,
) {
    match event {
        Event::Mmap { region, bytes } => {
            let vma = os
                .mmap(asid, bytes)
                .expect("machine out of physical memory");
            regions.insert(region, vma.base());
        }
        Event::Munmap { region } => {
            let base = regions.remove(&region).expect("munmap of unknown region");
            let shootdowns = os.munmap(asid, base).expect("region was mapped");
            mmu.apply_shootdowns(&shootdowns);
        }
        Event::Access {
            region,
            offset,
            write,
        } => {
            let base = regions[&region];
            let va = VirtAddr::new(base.value() + offset);
            let outcome = mmu.access(os, asid, va, write);
            counters.record(outcome.level, &outcome);
        }
        Event::Compute { insts } => counters.compute(insts),
        Event::StatsBarrier => counters.barrier(),
    }
}

fn finish<W: Workload + ?Sized>(
    os: &Os,
    mmu: &Mmu,
    asid: Asid,
    workload: &W,
    counters: RunCounters,
) -> RunStats {
    let profile = workload.profile();
    let insts =
        |c: &ThreadCounters| (c.accesses as f64 * profile.insts_per_access) as u64 + c.extra_insts;
    let process = os.process(asid);
    let (walk_restarts, mmu_cache_fill_drops, tlb) = mmu.hw_fault_counters();
    let hw_faults = crate::stats::HwFaultStats {
        walk_restarts,
        alias_install_retries: process.page_table().alias_install_retries(),
        mmu_cache_fill_drops,
        tlb_fill_drops: tlb.fill_drops,
        tlb_evict_abandons: tlb.evict_abandons,
        stlb_probe_misses: tlb.stlb_probe_misses,
    };
    RunStats {
        name: profile.name.clone(),
        instructions: insts(&counters.measured),
        full_instructions: insts(&counters.full),
        profile,
        mem: counters.measured.mem,
        walks: counters.measured.walks,
        walk_refs: counters.measured.walk_refs,
        alias_extras: counters.measured.alias_extras,
        ad_updates: counters.measured.ad_updates,
        full_mem: counters.full.mem,
        full_walk_refs: counters.full.walk_refs,
        os: os.stats(),
        page_census: process.page_table().page_census(),
        resident_bytes: process.resident_bytes(),
        touched_bytes: process.touched_bytes(),
        mmu_cache_hits: mmu.mmu_cache_hits(),
        hw_faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mechanism;
    use crate::machine::Machine;
    use tps_wl::{Gups, GupsParams, Initialized};

    fn gups(seed: u64) -> Initialized<Gups> {
        // Each thread's table exceeds the 2M L1 TLB reach on its own, so
        // sharing the structures is visible in the miss counts.
        Initialized::new(Gups::new(GupsParams {
            table_bytes: 128 << 20,
            updates: 20_000,
            seed,
        }))
    }

    fn config(mech: Mechanism) -> MachineConfig {
        MachineConfig::for_mechanism(mech)
            .with_memory(512 << 20)
            .with_verification()
    }

    #[test]
    fn smt_interference_increases_misses() {
        let solo = Machine::new(config(Mechanism::Thp)).run(&mut gups(1));
        let smt = run_smt(config(Mechanism::Thp), &mut gups(1), &mut gups(2));
        assert_eq!(smt.primary.mem.accesses, solo.mem.accesses);
        assert!(
            smt.primary.mem.l1_misses() > solo.mem.l1_misses(),
            "sharing the TLB must hurt: smt {} vs solo {}",
            smt.primary.mem.l1_misses(),
            solo.mem.l1_misses()
        );
    }

    #[test]
    fn smt_threads_translate_correctly_in_isolation() {
        // verify_translations is on: any ASID mix-up would assert inside.
        let stats = run_smt(config(Mechanism::Tps), &mut gups(3), &mut gups(4));
        assert_eq!(stats.primary.mem.accesses, stats.sibling.mem.accesses);
        assert!(stats.primary.mem.l1_hit_rate() > 0.9);
    }

    #[test]
    fn tps_suffers_less_under_smt_than_thp() {
        let thp = run_smt(config(Mechanism::Thp), &mut gups(5), &mut gups(6));
        let tps = run_smt(config(Mechanism::Tps), &mut gups(5), &mut gups(6));
        assert!(
            tps.primary.mem.l1_misses() < thp.primary.mem.l1_misses(),
            "tps {} vs thp {}",
            tps.primary.mem.l1_misses(),
            thp.primary.mem.l1_misses()
        );
    }
}
