//! Two-dimensional (virtualized) page-walk amplification (paper Fig. 2).
//!
//! Under hardware virtualization every *guest* page-table access is itself
//! a guest-physical address that must be translated through the *host*
//! (nested) page table — turning a 4-access native walk into up to 24
//! accesses. We model a real host page table mapping guest-physical memory
//! (2 MB host pages, as hypervisors use) with its own MMU caches, and
//! translate each guest walk reference through it.

use tps_core::{PageOrder, PhysAddr, PteFlags, VirtAddr, GIB};
use tps_pt::{MmuCaches, PageTable, Walker, PT_POOL_BASE};

/// The host (nested) translation stage.
#[derive(Clone, Debug)]
pub struct NestedWalkModel {
    host_pt: PageTable,
    host_caches: MmuCaches,
    walker: Walker,
    host_refs: u64,
}

/// Guest page-table pool window the host maps (1 GB of node frames —
/// far more nodes than any simulated process allocates).
const PT_POOL_WINDOW: u64 = GIB;

impl NestedWalkModel {
    /// Builds a host page table covering `guest_memory_bytes` of
    /// guest-physical space plus the guest's page-table node pool, using
    /// 2 MB host pages (identity-mapped; the offset is irrelevant to
    /// reference counting).
    ///
    /// # Panics
    ///
    /// Panics if `guest_memory_bytes` is zero.
    pub fn new(guest_memory_bytes: u64) -> Self {
        assert!(guest_memory_bytes > 0);
        let mut host_pt = PageTable::new();
        let two_m = PageOrder::P2M;
        let mut addr = 0u64;
        let end = guest_memory_bytes.next_multiple_of(two_m.bytes());
        while addr < end {
            host_pt
                .map(
                    VirtAddr::new(addr),
                    PhysAddr::new(addr),
                    two_m,
                    PteFlags::WRITABLE,
                )
                .expect("aligned identity mapping");
            addr += two_m.bytes();
        }
        let mut addr = PT_POOL_BASE;
        while addr < PT_POOL_BASE + PT_POOL_WINDOW {
            host_pt
                .map(
                    VirtAddr::new(addr),
                    PhysAddr::new(addr & ((1 << 40) - 1)),
                    two_m,
                    PteFlags::WRITABLE,
                )
                .expect("aligned identity mapping");
            addr += two_m.bytes();
        }
        NestedWalkModel {
            host_pt,
            host_caches: MmuCaches::default(),
            walker: Walker::default(),
            host_refs: 0,
        }
    }

    /// Translates one guest page-table access through the host tables,
    /// returning the number of *host* memory references it cost.
    ///
    /// # Panics
    ///
    /// Panics if the guest physical address falls outside the modeled
    /// guest-physical space (a simulator bug).
    pub fn nested_refs(&mut self, guest_pa: PhysAddr) -> u64 {
        let ok = self
            .walker
            .walk_for(
                0,
                &self.host_pt,
                VirtAddr::new(guest_pa.value()),
                Some(&mut self.host_caches),
            )
            .expect("host maps all guest-physical memory");
        self.host_refs += ok.refs.len() as u64;
        ok.refs.len() as u64
    }

    /// Total host references performed so far.
    pub fn host_refs(&self) -> u64 {
        self.host_refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::BASE_PAGE_SIZE;

    #[test]
    fn cold_nested_translation_costs_a_full_walk() {
        let mut n = NestedWalkModel::new(64 << 20);
        let cost = n.nested_refs(PhysAddr::new(0x12_3456));
        assert_eq!(cost, 3, "PML4 + PDPT + 2M leaf at level 2");
    }

    #[test]
    fn warm_nested_translations_are_cheap() {
        let mut n = NestedWalkModel::new(64 << 20);
        n.nested_refs(PhysAddr::new(BASE_PAGE_SIZE));
        let warm = n.nested_refs(PhysAddr::new(0x2000));
        assert_eq!(warm, 1, "PDPTE cache hit leaves only the leaf access");
        assert!(n.host_refs() >= 3);
    }

    #[test]
    fn pt_pool_addresses_are_translatable() {
        let mut n = NestedWalkModel::new(16 << 20);
        let cost = n.nested_refs(PhysAddr::new(PT_POOL_BASE + 0x5028));
        assert!(cost >= 1);
    }

    #[test]
    #[should_panic(expected = "host maps all guest-physical")]
    fn out_of_range_guest_pa_panics() {
        let mut n = NestedWalkModel::new(16 << 20);
        n.nested_refs(PhysAddr::new(32 << 20));
    }
}
