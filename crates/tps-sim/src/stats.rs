//! Run statistics collected by the machine.

use std::collections::BTreeMap;
use tps_core::{PageOrder, TenantFaultCause};
use tps_os::OsStats;
use tps_tlb::TlbStats;
use tps_wl::WorkloadProfile;

/// How one tenant's run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantOutcome {
    /// The tenant's event stream ran to completion.
    Completed,
    /// The machine killed the tenant: its statistics were frozen at the
    /// fault point and its memory returned to the shared pool.
    Killed {
        /// The fault that triggered the kill.
        cause: TenantFaultCause,
        /// The 0-based index of the event the tenant was executing when
        /// it faulted; for an OOM-killer victim, the number of events it
        /// had executed when it was chosen.
        at_event: u64,
    },
}

impl TenantOutcome {
    /// Whether the tenant was killed.
    pub fn is_killed(&self) -> bool {
        matches!(self, TenantOutcome::Killed { .. })
    }
}

/// Degradation counters from injected hardware-model faults.
///
/// Every counter records a fault a hardware structure absorbed on a
/// panic-free path: the run stays architecturally correct, only slower.
/// All zero when no fault injector is installed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HwFaultStats {
    /// Page walks restarted from the root after a `walk-step` fault.
    pub walk_restarts: u64,
    /// Alias-PTE stores retried after an `alias-install` fault.
    pub alias_install_retries: u64,
    /// MMU paging-structure-cache fills dropped by a `mmu-cache-fill` fault.
    pub mmu_cache_fill_drops: u64,
    /// Any-size TLB fills dropped by an `any-size-fill` fault.
    pub tlb_fill_drops: u64,
    /// Any-size TLB evictions abandoned by an `any-size-evict` fault.
    pub tlb_evict_abandons: u64,
    /// Dual-STLB probes forced to miss by an `stlb-probe` fault.
    pub stlb_probe_misses: u64,
}

impl HwFaultStats {
    /// Sum of every degradation counter.
    pub fn total(&self) -> u64 {
        self.walk_restarts
            + self.alias_install_retries
            + self.mmu_cache_fill_drops
            + self.tlb_fill_drops
            + self.tlb_evict_abandons
            + self.stlb_probe_misses
    }
}

/// Everything one simulated run produced.
///
/// TLB/walk counters come in two flavors: the *measured region* (after the
/// workload's [`tps_wl::Event::StatsBarrier`] ROI marker, i.e. steady
/// state — what the figures report) and the *full run* (initialization
/// included — what the system-time figure needs).
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Benchmark name.
    pub name: String,
    /// The workload's timing profile (calibration knobs).
    pub profile: WorkloadProfile,
    /// TLB hierarchy counters.
    pub mem: TlbStats,
    /// Page walks performed (full L2 misses).
    pub walks: u64,
    /// Page-table memory references made by the hardware walker
    /// (including alias-PTE extra accesses and nested amplification).
    pub walk_refs: u64,
    /// Walks whose final access landed on an alias PTE (extra access).
    pub alias_extras: u64,
    /// Hardware A/D-bit update stores.
    pub ad_updates: u64,
    /// OS activity counters.
    pub os: OsStats,
    /// Instructions executed in the measured region (accesses ×
    /// instructions-per-access plus explicit `Compute` events).
    pub instructions: u64,
    /// Instructions over the whole run, initialization included.
    pub full_instructions: u64,
    /// TLB counters over the whole run (compulsory misses included).
    pub full_mem: TlbStats,
    /// Walk memory references over the whole run.
    pub full_walk_refs: u64,
    /// Final page census of the process (order → live pages, Fig. 18).
    pub page_census: BTreeMap<PageOrder, u64>,
    /// Bytes of virtual memory mapped when the run ended.
    pub resident_bytes: u64,
    /// Bytes demand-touched at base-page granularity.
    pub touched_bytes: u64,
    /// MMU-cache hits (PDE, PDPTE, PML4E).
    pub mmu_cache_hits: (u64, u64, u64),
    /// Hardware-fault degradation counters (all zero without an injector).
    pub hw_faults: HwFaultStats,
}

/// Everything a multi-tenant machine run produced: one [`RunStats`] per
/// tenant (in tenant order, attributed by the event scheduler) plus the
/// machine-wide rollup.
///
/// For a single-tenant machine the rollup is exactly what the old
/// single-process driver reported, so `into_solo()` is the drop-in
/// replacement for the previous `Machine::run` return value.
#[derive(Clone, Debug)]
pub struct MachineRunStats {
    /// Machine-wide rollup: counter sums across tenants, with the OS,
    /// MMU-cache and hardware-fault counters read machine-wide.
    pub global: RunStats,
    /// Per-tenant statistics, indexed by tenant slot (== ASID).
    pub per_tenant: Vec<RunStats>,
    /// Per-tenant outcomes, indexed like `per_tenant`. All
    /// [`TenantOutcome::Completed`] on a fault-free run.
    pub outcomes: Vec<TenantOutcome>,
}

impl MachineRunStats {
    /// Wraps a single-tenant run that completed normally — the inverse of
    /// [`MachineRunStats::into_solo`].
    pub fn solo_completed(stats: RunStats) -> Self {
        MachineRunStats {
            global: stats.clone(),
            per_tenant: vec![stats],
            outcomes: vec![TenantOutcome::Completed],
        }
    }

    /// Number of tenants that ran.
    pub fn tenant_count(&self) -> usize {
        self.per_tenant.len()
    }

    /// One tenant's outcome. Tenants of runs recorded before outcomes
    /// existed (or slots out of range) report `Completed`.
    pub fn outcome(&self, slot: usize) -> TenantOutcome {
        self.outcomes
            .get(slot)
            .copied()
            .unwrap_or(TenantOutcome::Completed)
    }

    /// Number of tenants the machine killed.
    pub fn killed_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_killed()).count()
    }

    /// One tenant's statistics.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn tenant(&self, slot: usize) -> &RunStats {
        &self.per_tenant[slot]
    }

    /// Unwraps the statistics of a single-tenant run.
    ///
    /// # Panics
    ///
    /// Panics if the machine ran more than one tenant.
    pub fn into_solo(self) -> RunStats {
        assert_eq!(
            self.per_tenant.len(),
            1,
            "into_solo on a {}-tenant run",
            self.per_tenant.len()
        );
        self.global
    }

    /// Borrows the statistics of a single-tenant run.
    ///
    /// # Panics
    ///
    /// Panics if the machine ran more than one tenant.
    pub fn solo(&self) -> &RunStats {
        assert_eq!(
            self.per_tenant.len(),
            1,
            "solo on a {}-tenant run",
            self.per_tenant.len()
        );
        &self.global
    }
}

impl RunStats {
    /// L1 DTLB misses per thousand instructions (Fig. 8).
    pub fn l1_mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.mem.l1_misses() as f64 * 1000.0 / self.instructions as f64
    }

    /// Fraction of L1 misses eliminated relative to a baseline run
    /// (Fig. 10/16). Returns 1.0 when the baseline itself has no misses.
    pub fn l1_misses_eliminated_vs(&self, baseline: &RunStats) -> f64 {
        let base = baseline.mem.l1_misses();
        if base == 0 {
            return 1.0;
        }
        1.0 - self.mem.l1_misses() as f64 / base as f64
    }

    /// Fraction of page-walk memory references eliminated relative to a
    /// baseline run (Fig. 11).
    pub fn walk_refs_eliminated_vs(&self, baseline: &RunStats) -> f64 {
        if baseline.walk_refs == 0 {
            return 1.0;
        }
        1.0 - self.walk_refs as f64 / baseline.walk_refs as f64
    }

    /// Average walk memory references per walk.
    pub fn refs_per_walk(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.walk_refs as f64 / self.walks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(l1_misses: u64, walk_refs: u64) -> RunStats {
        RunStats {
            name: "t".into(),
            profile: WorkloadProfile::named("t"),
            mem: TlbStats {
                accesses: 1000,
                l1_hits: 1000 - l1_misses,
                stlb_hits: l1_misses,
                range_hits: 0,
                l2_misses: 0,
            },
            walks: walk_refs / 4,
            walk_refs,
            alias_extras: 0,
            ad_updates: 0,
            os: OsStats::default(),
            instructions: 10_000,
            full_instructions: 10_000,
            full_mem: TlbStats::default(),
            full_walk_refs: walk_refs,
            page_census: BTreeMap::new(),
            resident_bytes: 0,
            touched_bytes: 0,
            mmu_cache_hits: (0, 0, 0),
            hw_faults: HwFaultStats::default(),
        }
    }

    #[test]
    fn mpki() {
        let s = stats(50, 0);
        assert!((s.l1_mpki() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn elimination_ratios() {
        let base = stats(100, 400);
        let tps = stats(2, 8);
        assert!((tps.l1_misses_eliminated_vs(&base) - 0.98).abs() < 1e-9);
        assert!((tps.walk_refs_eliminated_vs(&base) - 0.98).abs() < 1e-9);
        assert_eq!(base.l1_misses_eliminated_vs(&base), 0.0);
    }

    #[test]
    fn vacuous_baseline() {
        let base = stats(0, 0);
        let other = stats(0, 0);
        assert_eq!(other.l1_misses_eliminated_vs(&base), 1.0);
        assert_eq!(other.walk_refs_eliminated_vs(&base), 1.0);
        assert_eq!(other.refs_per_walk(), 0.0);
    }
}
