//! Machine configuration (the paper's Table I plus policy selection).

use tps_core::TpsError;
use tps_mem::BuddyAllocator;
use tps_os::{AliasPolicy, PolicyConfig, PolicyKind};
use tps_pt::MmuCacheConfig;
use tps_tlb::{HierarchyKind, TlbConfig};

/// The translation mechanisms compared in the paper's figures.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mechanism {
    /// Reservation-based THP on the conventional TLB hierarchy — the
    /// baseline of Figs. 10–14.
    Thp,
    /// CoLT-SA coalesced TLB over the THP OS policy.
    Colt,
    /// Redundant Memory Mappings: eager paging + Range TLB.
    Rmm,
    /// Tailored Page Sizes (reservation mode, 100 % utilization threshold).
    Tps,
    /// TPS with eager paging.
    TpsEager,
    /// 4 KB-only demand paging on the conventional hierarchy.
    Only4K,
    /// Exclusive 2 MB paging (Fig. 9 memory-bloat study).
    Only2M,
}

impl Mechanism {
    /// Label as used in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Thp => "THP",
            Mechanism::Colt => "CoLT",
            Mechanism::Rmm => "RMM",
            Mechanism::Tps => "TPS",
            Mechanism::TpsEager => "TPS-eager",
            Mechanism::Only4K => "4K",
            Mechanism::Only2M => "2M",
        }
    }

    /// The OS paging policy this mechanism runs.
    pub fn policy_kind(self) -> PolicyKind {
        match self {
            Mechanism::Thp | Mechanism::Colt => PolicyKind::Thp,
            Mechanism::Rmm => PolicyKind::Rmm,
            Mechanism::Tps => PolicyKind::Tps,
            Mechanism::TpsEager => PolicyKind::TpsEager,
            Mechanism::Only4K => PolicyKind::Only4K,
            Mechanism::Only2M => PolicyKind::Only2M,
        }
    }

    /// The TLB organization this mechanism uses.
    pub fn hierarchy_kind(self) -> HierarchyKind {
        match self {
            Mechanism::Colt => HierarchyKind::Colt,
            Mechanism::Rmm => HierarchyKind::Rmm,
            Mechanism::Tps | Mechanism::TpsEager => HierarchyKind::Tps,
            Mechanism::Thp | Mechanism::Only4K | Mechanism::Only2M => HierarchyKind::Baseline,
        }
    }

    /// The three mechanisms compared against the THP baseline in
    /// Figs. 10–14.
    pub fn contenders() -> [Mechanism; 3] {
        [Mechanism::Tps, Mechanism::Colt, Mechanism::Rmm]
    }

    /// Every mechanism, in the stable order used by CLI help and reports.
    pub fn all() -> [Mechanism; 7] {
        [
            Mechanism::Only4K,
            Mechanism::Only2M,
            Mechanism::Thp,
            Mechanism::Colt,
            Mechanism::Rmm,
            Mechanism::Tps,
            Mechanism::TpsEager,
        ]
    }

    /// Canonical CLI name: the figure-legend label, lowercased
    /// (`thp`, `colt`, `rmm`, `tps`, `tps-eager`, `4k`, `2m`).
    pub fn cli_name(self) -> &'static str {
        match self {
            Mechanism::Thp => "thp",
            Mechanism::Colt => "colt",
            Mechanism::Rmm => "rmm",
            Mechanism::Tps => "tps",
            Mechanism::TpsEager => "tps-eager",
            Mechanism::Only4K => "4k",
            Mechanism::Only2M => "2m",
        }
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Mechanism {
    type Err = TpsError;

    /// Parses a mechanism from its CLI name or figure-legend label,
    /// case-insensitively (`tpseager` is accepted for `tps-eager`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        if lower == "tpseager" {
            return Ok(Mechanism::TpsEager);
        }
        Mechanism::all()
            .into_iter()
            .find(|m| m.cli_name() == lower || m.label().to_ascii_lowercase() == lower)
            .ok_or_else(|| {
                TpsError::invalid_spec(format!(
                    "unknown mechanism {s:?} (4k, 2m, thp, colt, rmm, tps, tps-eager)"
                ))
            })
    }
}

/// Full machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Modeled physical memory size.
    pub memory_bytes: u64,
    /// OS paging policy.
    pub policy: PolicyConfig,
    /// TLB organization and sizes.
    pub tlb: TlbConfig,
    /// Alias-PTE behavior of the walker.
    pub alias: AliasPolicy,
    /// MMU (page-structure) cache sizes.
    pub mmu_cache: MmuCacheConfig,
    /// Model a perfect L1 TLB (every access hits L1; Fig. 3).
    pub perfect_l1: bool,
    /// Model a perfect L2 TLB (every L1 miss hits the STLB; Fig. 3).
    pub perfect_l2: bool,
    /// Two-dimensional (virtualized) page walks (Fig. 2).
    pub virtualized: bool,
    /// Cross-check every translation against the page table (slow; tests).
    pub verify_translations: bool,
    /// Pre-fragmented physical memory to start from (Fig. 15/16), replacing
    /// the fresh allocator of `memory_bytes`.
    pub initial_memory: Option<BuddyAllocator>,
    /// Faults between foreign background allocations (0 = pristine memory;
    /// see `tps_os::Os::set_background_noise`). Defaults to 1536 so buddy
    /// adjacency matches a realistically busy system.
    pub os_noise_period: u64,
    /// Five-level paging (Intel LA57): one extra radix level per walk.
    pub five_level_paging: bool,
    /// Fine-grained A/D bit vectors in alias-PTE spare bits (paper
    /// §III-C1): tailored pages track dirty sixteenths so swap-out writes
    /// back less.
    pub fine_grained_ad: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            memory_bytes: 4 << 30,
            policy: PolicyConfig::new(PolicyKind::Thp),
            tlb: TlbConfig::default(),
            alias: AliasPolicy::Pointer,
            mmu_cache: MmuCacheConfig::default(),
            perfect_l1: false,
            perfect_l2: false,
            virtualized: false,
            verify_translations: false,
            initial_memory: None,
            os_noise_period: 1536,
            five_level_paging: false,
            fine_grained_ad: false,
        }
    }
}

impl MachineConfig {
    /// Table I configuration running the given mechanism.
    pub fn for_mechanism(mechanism: Mechanism) -> Self {
        MachineConfig {
            policy: PolicyConfig::new(mechanism.policy_kind()),
            tlb: TlbConfig::with_kind(mechanism.hierarchy_kind()),
            ..Default::default()
        }
    }

    /// Sets the paging policy, keeping the matching TLB organization.
    #[must_use]
    pub fn with_policy(mut self, kind: PolicyKind) -> Self {
        self.policy = PolicyConfig::new(kind);
        self.tlb = TlbConfig::with_kind(match kind {
            PolicyKind::Tps | PolicyKind::TpsEager => HierarchyKind::Tps,
            PolicyKind::Rmm => HierarchyKind::Rmm,
            _ => HierarchyKind::Baseline,
        });
        self
    }

    /// Sets the physical memory size.
    #[must_use]
    pub fn with_memory(mut self, bytes: u64) -> Self {
        self.memory_bytes = bytes;
        self
    }

    /// Starts from a pre-fragmented allocator (Fig. 15/16).
    #[must_use]
    pub fn with_initial_memory(mut self, buddy: BuddyAllocator) -> Self {
        self.initial_memory = Some(buddy);
        self
    }

    /// Enables translation verification against the page table.
    #[must_use]
    pub fn with_verification(mut self) -> Self {
        self.verify_translations = true;
        self
    }
}

/// The simulated processor configuration of the paper's Table I, as
/// `(component, description)` rows. The TLB rows reflect [`TlbConfig`]
/// defaults; core/cache rows parameterize the timing model.
pub fn table1_rows() -> Vec<(&'static str, String)> {
    let t = TlbConfig::default();
    vec![
        (
            "Core",
            "4-wide issue, 256-entry ROB, 3.2 GHz (timing model: per-workload base CPI)".into(),
        ),
        (
            "L1 caches",
            "32 KB I$ + 32 KB D$, 64 B lines, 4-cycle latency, 8-way".into(),
        ),
        (
            "Last-level cache",
            "2 MB, 16-way, 64 B lines, 10-cycle latency".into(),
        ),
        (
            "L1 DTLB",
            format!(
                "{} × 4K ({}x{}-way) + {} × 2M + {} × 1G",
                t.l1_4k_sets * t.l1_4k_ways,
                t.l1_4k_sets,
                t.l1_4k_ways,
                t.l1_2m_entries,
                t.l1_1g_entries
            ),
        ),
        (
            "STLB",
            format!(
                "{} × 4K/2M ({}x{}-way) + {} × 1G",
                t.stlb_sets * t.stlb_ways,
                t.stlb_sets,
                t.stlb_ways,
                t.stlb_1g_entries
            ),
        ),
        (
            "TPS TLB",
            format!(
                "{} entries, fully associative, any page size",
                t.tps_l1_entries
            ),
        ),
        (
            "Range TLB (RMM)",
            format!("{} entries, fully associative", t.range_tlb_entries),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_mapping_consistent() {
        assert_eq!(Mechanism::Tps.hierarchy_kind(), HierarchyKind::Tps);
        assert_eq!(Mechanism::Colt.policy_kind(), PolicyKind::Thp);
        assert_eq!(Mechanism::Colt.hierarchy_kind(), HierarchyKind::Colt);
        assert_eq!(Mechanism::Rmm.policy_kind(), PolicyKind::Rmm);
        assert_eq!(Mechanism::Thp.hierarchy_kind(), HierarchyKind::Baseline);
    }

    #[test]
    fn with_policy_selects_matching_tlb() {
        let c = MachineConfig::default().with_policy(PolicyKind::Tps);
        assert_eq!(c.tlb.kind, HierarchyKind::Tps);
        let c = MachineConfig::default().with_policy(PolicyKind::Only4K);
        assert_eq!(c.tlb.kind, HierarchyKind::Baseline);
    }

    #[test]
    fn table1_has_all_rows() {
        let rows = table1_rows();
        assert!(rows.len() >= 6);
        assert!(rows.iter().any(|(k, _)| *k == "STLB"));
        assert!(rows.iter().any(|(_, v)| v.contains("1536")));
    }

    #[test]
    fn labels_unique() {
        let all = Mechanism::all();
        let mut labels: Vec<_> = all.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn cli_names_round_trip() {
        // Exhaustive over Mechanism: adding a variant must extend `all()`
        // and keep parse(cli_name) == mechanism and parse(label) == it too.
        let all = Mechanism::all();
        assert_eq!(all.len(), 7);
        for mech in all {
            let cli = match mech {
                Mechanism::Thp => "thp",
                Mechanism::Colt => "colt",
                Mechanism::Rmm => "rmm",
                Mechanism::Tps => "tps",
                Mechanism::TpsEager => "tps-eager",
                Mechanism::Only4K => "4k",
                Mechanism::Only2M => "2m",
            };
            assert_eq!(mech.cli_name(), cli);
            assert_eq!(cli.parse::<Mechanism>().unwrap(), mech);
            assert_eq!(mech.label().parse::<Mechanism>().unwrap(), mech);
            assert_eq!(
                mech.label()
                    .to_ascii_uppercase()
                    .parse::<Mechanism>()
                    .unwrap(),
                mech,
                "parsing is case-insensitive"
            );
        }
        assert_eq!(
            "tpseager".parse::<Mechanism>().unwrap(),
            Mechanism::TpsEager
        );
        let err = "hugepages".parse::<Mechanism>().unwrap_err();
        assert!(err.to_string().contains("unknown mechanism"));
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn default_config_matches_table_one() {
        let c = MachineConfig::default();
        assert_eq!(c.tlb.l1_4k_sets * c.tlb.l1_4k_ways, 64);
        assert_eq!(c.tlb.stlb_sets * c.tlb.stlb_ways, 1536);
        assert_eq!(c.tlb.tps_l1_entries, 32);
        assert!(!c.five_level_paging);
        assert!(!c.fine_grained_ad);
        assert!(c.os_noise_period > 0, "busy-system default");
    }

    #[test]
    fn builders_compose() {
        let c = MachineConfig::for_mechanism(Mechanism::Tps)
            .with_memory(123 << 20)
            .with_verification();
        assert_eq!(c.memory_bytes, 123 << 20);
        assert!(c.verify_translations);
        assert_eq!(c.tlb.kind, HierarchyKind::Tps);
        assert_eq!(c.policy.kind, PolicyKind::Tps);
    }

    #[test]
    fn initial_memory_overrides_size() {
        use tps_mem::BuddyAllocator;
        let c = MachineConfig::for_mechanism(Mechanism::Thp)
            .with_initial_memory(BuddyAllocator::new(32 << 20));
        assert_eq!(c.initial_memory.as_ref().unwrap().total_bytes(), 32 << 20);
        let machine = crate::MachineBuilder::new(c)
            .tenant(crate::TenantSpec::external("probe"))
            .build()
            .unwrap();
        assert_eq!(machine.os().buddy().total_bytes(), 32 << 20);
    }
}
