//! The TLB entry type shared by every TLB structure.

use tps_core::{LeafInfo, PageOrder, PteFlags, VirtAddr};

/// Address-space identifier distinguishing hardware threads / processes
/// sharing a TLB (used by the SMT model).
pub type Asid = u16;

/// One cached virtual-to-physical translation.
///
/// `vpn`/`pfn` are base-page numbers of the *page start* (so they are
/// aligned to `1 << order`). The paper's any-size TLB stores a *page mask*
/// per entry (Fig. 7); [`TlbEntry::covers`] performs exactly that
/// mask-then-compare.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    /// Address space the entry belongs to.
    pub asid: Asid,
    /// Base-page VPN of the page start.
    pub vpn: u64,
    /// Page order (the mask field: `order` low VPN bits are offset).
    pub order: PageOrder,
    /// Base-page PFN of the page start.
    pub pfn: u64,
    /// Cached writable permission.
    pub writable: bool,
}

impl TlbEntry {
    /// Builds an entry from a decoded leaf PTE and the accessed address.
    pub fn from_leaf(asid: Asid, va: VirtAddr, leaf: &LeafInfo) -> Self {
        let page_va = va.align_down(leaf.order.shift());
        TlbEntry {
            asid,
            vpn: page_va.base_page_number(),
            order: leaf.order,
            pfn: leaf.base.base_page_number(),
            writable: leaf.flags.contains(PteFlags::WRITABLE),
        }
    }

    /// True if this entry translates `(asid, vpn)` — the hardware's
    /// mask-then-compare (one extra gate delay in the paper's design).
    #[inline]
    pub fn covers(&self, asid: Asid, vpn: u64) -> bool {
        self.asid == asid && (vpn >> self.order.get()) == (self.vpn >> self.order.get())
    }

    /// Translates a covered VPN to its PFN.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the VPN is covered.
    #[inline]
    pub fn translate(&self, vpn: u64) -> u64 {
        debug_assert!((vpn >> self.order.get()) == (self.vpn >> self.order.get()));
        self.pfn + (vpn - self.vpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::{PhysAddr, PteFlags};

    fn entry(order: u8, vpn: u64, pfn: u64) -> TlbEntry {
        TlbEntry {
            asid: 0,
            vpn,
            order: PageOrder::new(order).unwrap(),
            pfn,
            writable: true,
        }
    }

    #[test]
    fn covers_respects_mask() {
        let e = entry(3, 0x100, 0x900); // 32K page: 8 base pages
        assert!(e.covers(0, 0x100));
        assert!(e.covers(0, 0x107));
        assert!(!e.covers(0, 0x108));
        assert!(!e.covers(0, 0xff));
        assert!(!e.covers(1, 0x100), "other ASID never hits");
    }

    #[test]
    fn translate_offsets_within_page() {
        let e = entry(3, 0x100, 0x900);
        assert_eq!(e.translate(0x100), 0x900);
        assert_eq!(e.translate(0x105), 0x905);
    }

    #[test]
    fn from_leaf_aligns_to_page_start() {
        let leaf = LeafInfo {
            base: PhysAddr::new(0x40_0000),
            order: PageOrder::new(4).unwrap(), // 64K
            flags: PteFlags::PRESENT | PteFlags::WRITABLE,
        };
        let e = TlbEntry::from_leaf(7, VirtAddr::new(0x12_3456), &leaf);
        assert_eq!(e.vpn, 0x12_0000 >> 12);
        assert_eq!(e.pfn, 0x40_0000 >> 12);
        assert_eq!(e.asid, 7);
        assert!(e.writable);
        assert!(e.covers(7, 0x12_f000 >> 12));
    }
}
