//! CoLT-SA: the coalesced-TLB baseline (Pham et al., MICRO 2012; paper §V).
//!
//! CoLT exploits the small-scale contiguity the buddy allocator produces
//! naturally: when a fill finds that neighboring PTEs (within the same
//! aligned 8-entry window — one cache line of PTEs, read for free during
//! the walk) map physically contiguous frames with identical permissions,
//! one TLB entry is installed covering the whole run. Running over a
//! THP-style OS, coalescing applies at both granularities the page table
//! produces: 4 KB *and* 2 MB leaves (runs of adjacent huge pages). Reach
//! grows by at most 8×, which is why CoLT barely helps random access over
//! gigabytes (paper Fig. 10, GUPS).

use crate::entry::Asid;
use tps_core::{PageOrder, VirtAddr};

/// Width of the coalescing window in pages (one PTE cache line).
pub const COLT_WINDOW: u64 = 8;

/// A coalesced TLB entry covering `run_len` contiguous pages of one
/// granularity.
///
/// `base_upn` / `base_ufn` are page numbers *at the entry's granularity*
/// (`upn = va >> (12 + granularity)`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ColtEntry {
    /// Address space of the entry.
    pub asid: Asid,
    /// Page size the run coalesces (0 = 4 KB runs, 9 = 2 MB runs).
    pub granularity: PageOrder,
    /// First page number (at granularity) of the run.
    pub base_upn: u64,
    /// Number of contiguous pages covered (1..=8).
    pub run_len: u8,
    /// Frame number (at granularity) backing `base_upn`.
    pub base_ufn: u64,
    /// Cached writable permission (uniform across the run).
    pub writable: bool,
}

impl ColtEntry {
    /// True if the entry translates the given *base-page* VPN.
    #[inline]
    pub fn covers(&self, asid: Asid, vpn: u64) -> bool {
        let upn = vpn >> self.granularity.get();
        self.asid == asid && upn >= self.base_upn && upn < self.base_upn + self.run_len as u64
    }

    /// Translates a covered base-page VPN to its base-page PFN.
    #[inline]
    pub fn translate(&self, vpn: u64) -> u64 {
        let g = self.granularity.get();
        let upn = vpn >> g;
        debug_assert!(upn >= self.base_upn && upn < self.base_upn + self.run_len as u64);
        let ufn = self.base_ufn + (upn - self.base_upn);
        (ufn << g) | (vpn & ((1 << g) - 1))
    }

    /// First base-page VPN covered.
    fn start_vpn(&self) -> u64 {
        self.base_upn << self.granularity.get()
    }

    /// One past the last base-page VPN covered.
    fn end_vpn(&self) -> u64 {
        (self.base_upn + self.run_len as u64) << self.granularity.get()
    }
}

/// Detects the contiguous run around page `upn -> ufn` (numbers at the
/// given granularity) within its aligned 8-page window.
///
/// `probe(u)` returns the `(ufn, writable)` mapping of page `u` *at the
/// same granularity* if one exists — in hardware this comes from the PTE
/// cache line already fetched by the walk, so probing is free.
pub fn detect_run(
    asid: Asid,
    granularity: PageOrder,
    upn: u64,
    ufn: u64,
    writable: bool,
    probe: impl Fn(u64) -> Option<(u64, bool)>,
) -> ColtEntry {
    let window_start = upn & !(COLT_WINDOW - 1);
    let window_end = window_start + COLT_WINDOW;
    let mut start = upn;
    while start > window_start {
        let prev = start - 1;
        match probe(prev) {
            // Contiguity: page `prev` must map exactly (upn - prev) frames
            // below `ufn`, with matching permissions.
            Some((f, w)) if w == writable && ufn >= upn - prev && f == ufn - (upn - prev) => {
                start = prev;
            }
            _ => break,
        }
    }
    let mut end = upn + 1;
    while end < window_end {
        match probe(end) {
            Some((f, w)) if w == writable && f == ufn + (end - upn) => end += 1,
            _ => break,
        }
    }
    ColtEntry {
        asid,
        granularity,
        base_upn: start,
        run_len: (end - start) as u8,
        base_ufn: ufn - (upn - start),
        writable,
    }
}

/// Set-associative coalesced TLB for one granularity (CoLT-SA).
///
/// Indexed by the window number (`upn / 8`) so a run always maps to one
/// set.
#[derive(Clone, Debug)]
pub struct ColtTlb {
    sets: usize,
    ways: usize,
    granularity: PageOrder,
    entries: Vec<Vec<(ColtEntry, u64)>>,
    clock: u64,
    /// Sum of run lengths of filled entries (for reach statistics).
    filled_pages: u64,
    fills: u64,
}

impl ColtTlb {
    /// Creates a CoLT TLB with `sets × ways` entries for runs of pages of
    /// the given granularity.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize, granularity: PageOrder) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "need at least one way");
        ColtTlb {
            sets,
            ways,
            granularity,
            entries: vec![Vec::with_capacity(ways); sets],
            clock: 0,
            filled_pages: 0,
            fills: 0,
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// The granularity this structure coalesces.
    pub fn granularity(&self) -> PageOrder {
        self.granularity
    }

    #[inline]
    fn set_of_upn(&self, upn: u64) -> usize {
        // Fibonacci (multiplicative) index hashing: power-of-two-aligned
        // region bases would otherwise land every hot window in one set
        // (commercial TLBs hash their index bits for the same reason).
        // A run's window number is constant, so a run stays in one set.
        let w = upn / COLT_WINDOW;
        if self.sets == 1 {
            return 0;
        }
        let shift = 64 - self.sets.trailing_zeros();
        (w.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> shift) as usize
    }

    /// Looks up a base-page VPN.
    pub fn lookup(&mut self, asid: Asid, vpn: u64) -> Option<ColtEntry> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of_upn(vpn >> self.granularity.get());
        self.entries[set]
            .iter_mut()
            .find(|(e, _)| e.covers(asid, vpn))
            .map(|(e, stamp)| {
                *stamp = clock;
                *e
            })
    }

    /// Installs a (possibly coalesced) entry.
    ///
    /// # Panics
    ///
    /// Panics if the entry's granularity differs from the TLB's.
    pub fn fill(&mut self, entry: ColtEntry) {
        assert_eq!(entry.granularity, self.granularity, "granularity mismatch");
        self.clock += 1;
        self.fills += 1;
        self.filled_pages += entry.run_len as u64;
        let set = self.set_of_upn(entry.base_upn);
        let ways = self.ways;
        let slot = &mut self.entries[set];
        // Replace any entry overlapping the new run (stale sub-runs).
        slot.retain(|(e, _)| {
            !(e.asid == entry.asid
                && e.base_upn < entry.base_upn + entry.run_len as u64
                && entry.base_upn < e.base_upn + e.run_len as u64)
        });
        if slot.len() < ways {
            slot.push((entry, self.clock));
            return;
        }
        let victim = slot
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(i, _)| i)
            .expect("set full");
        slot[victim] = (entry, self.clock);
    }

    /// Average pages per filled entry (the achieved coalescing factor).
    pub fn mean_run_len(&self) -> f64 {
        if self.fills == 0 {
            1.0
        } else {
            self.filled_pages as f64 / self.fills as f64
        }
    }

    /// Shoots down entries overlapping the page range for the ASID.
    pub fn invalidate(&mut self, asid: Asid, va: VirtAddr, order: PageOrder) {
        let start = va.align_down(order.shift()).base_page_number();
        let end = start + order.base_pages();
        for set in &mut self.entries {
            set.retain(|(e, _)| !(e.asid == asid && e.start_vpn() < end && start < e.end_vpn()));
        }
    }

    /// Removes every entry of an ASID.
    pub fn invalidate_asid(&mut self, asid: Asid) {
        for set in &mut self.entries {
            set.retain(|(e, _)| e.asid != asid);
        }
    }

    /// Removes everything.
    pub fn flush(&mut self) {
        for set in &mut self.entries {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn probe_from(map: &HashMap<u64, (u64, bool)>) -> impl Fn(u64) -> Option<(u64, bool)> + '_ {
        move |v| map.get(&v).copied()
    }

    fn g0() -> PageOrder {
        PageOrder::P4K
    }

    #[test]
    fn detect_full_window_run() {
        // Pages 8..16 map to frames 100..108: perfectly contiguous.
        let map: HashMap<_, _> = (0..8).map(|i| (8 + i, (100 + i, true))).collect();
        let e = detect_run(0, g0(), 11, 103, true, probe_from(&map));
        assert_eq!(e.base_upn, 8);
        assert_eq!(e.run_len, 8);
        assert_eq!(e.base_ufn, 100);
        assert!(e.covers(0, 15));
        assert_eq!(e.translate(15), 107);
    }

    #[test]
    fn detect_stops_at_discontiguity() {
        let mut map: HashMap<_, _> = (0..8).map(|i| (8 + i, (100 + i, true))).collect();
        map.insert(13, (500, true)); // breaks contiguity at page 13
        let e = detect_run(0, g0(), 10, 102, true, probe_from(&map));
        assert_eq!(e.base_upn, 8);
        assert_eq!(e.run_len, 5, "pages 8..13");
    }

    #[test]
    fn detect_respects_window_boundary() {
        // Pages 4..12 contiguous, but window of page 10 is [8, 16).
        let map: HashMap<_, _> = (0..12).map(|i| (4 + i, (200 + i, true))).collect();
        let e = detect_run(0, g0(), 10, 206, true, probe_from(&map));
        assert_eq!(e.base_upn, 8, "cannot extend below the window");
        assert!(e.base_upn + e.run_len as u64 <= 16);
    }

    #[test]
    fn detect_requires_uniform_permissions() {
        let mut map: HashMap<_, _> = (0..8).map(|i| (8 + i, (100 + i, true))).collect();
        map.insert(9, (101, false)); // read-only page breaks the run
        let e = detect_run(0, g0(), 10, 102, true, probe_from(&map));
        assert_eq!(e.base_upn, 10);
    }

    #[test]
    fn singleton_run_when_isolated() {
        let map: HashMap<_, _> = [(42u64, (7u64, true))].into_iter().collect();
        let e = detect_run(0, g0(), 42, 7, true, probe_from(&map));
        assert_eq!(e.run_len, 1);
        assert_eq!(e.base_upn, 42);
    }

    #[test]
    fn two_meg_granularity_run() {
        // 2M pages 4..8 map contiguous 2M frames 20..24.
        let map: HashMap<_, _> = (0..4).map(|i| (4 + i, (20 + i, true))).collect();
        let e = detect_run(0, PageOrder::P2M, 5, 21, true, probe_from(&map));
        assert_eq!(e.base_upn, 4);
        assert_eq!(e.run_len, 4);
        // Base-page VPN inside 2M page 6 translates through the run.
        let vpn = (6 << 9) + 123;
        assert!(e.covers(0, vpn));
        assert_eq!(e.translate(vpn), (22 << 9) + 123);
        // Reach: 4 x 2M = 8 MB from one entry.
        assert!(!e.covers(0, 8 << 9));
    }

    #[test]
    fn tlb_fill_lookup_and_overlap_replacement() {
        let mut t = ColtTlb::new(8, 2, g0());
        let short = ColtEntry {
            asid: 0,
            granularity: g0(),
            base_upn: 8,
            run_len: 2,
            base_ufn: 100,
            writable: true,
        };
        t.fill(short);
        assert!(t.lookup(0, 9).is_some());
        // A longer run over the same window replaces the stale short one.
        let long = ColtEntry {
            run_len: 8,
            ..short
        };
        t.fill(long);
        assert_eq!(t.lookup(0, 15).unwrap().run_len, 8);
        assert!((t.mean_run_len() - 5.0).abs() < 1e-9, "(2+8)/2 fills");
    }

    #[test]
    fn invalidation_kills_overlapping_runs() {
        let mut t = ColtTlb::new(8, 2, PageOrder::P2M);
        t.fill(ColtEntry {
            asid: 0,
            granularity: PageOrder::P2M,
            base_upn: 0,
            run_len: 8,
            base_ufn: 100,
            writable: true,
        });
        // Shooting down one 4K page inside the 16M run kills it.
        t.invalidate(0, VirtAddr::new(5 << 21), PageOrder::P4K);
        assert!(t.lookup(0, 0).is_none());
    }

    #[test]
    fn lru_eviction_per_set() {
        let mut t = ColtTlb::new(1, 2, g0());
        let mk = |w: u64| ColtEntry {
            asid: 0,
            granularity: g0(),
            base_upn: w * 8,
            run_len: 1,
            base_ufn: w,
            writable: true,
        };
        t.fill(mk(0));
        t.fill(mk(1));
        assert!(t.lookup(0, 0).is_some());
        t.fill(mk(2));
        assert!(t.lookup(0, 8).is_none(), "window 1 evicted as LRU");
    }

    #[test]
    #[should_panic(expected = "granularity mismatch")]
    fn rejects_mixed_granularity() {
        let mut t = ColtTlb::new(8, 2, g0());
        t.fill(ColtEntry {
            asid: 0,
            granularity: PageOrder::P2M,
            base_upn: 0,
            run_len: 1,
            base_ufn: 0,
            writable: true,
        });
    }
}
