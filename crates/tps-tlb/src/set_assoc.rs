//! Fixed-page-size set-associative TLB (the conventional design).

use crate::entry::{Asid, TlbEntry};
use tps_core::{PageOrder, VirtAddr};

/// A set-associative TLB holding entries of one fixed page order.
///
/// Indexed by the low bits of the page number at that order, with true LRU
/// within each set — the structure of the per-size L1 TLBs in commercial
/// cores (paper Fig. 1).
///
/// # Example
///
/// ```
/// use tps_tlb::{SetAssocTlb, TlbEntry};
/// use tps_core::PageOrder;
///
/// let mut tlb = SetAssocTlb::new(16, 4, PageOrder::P4K); // 64-entry L1 DTLB
/// let e = TlbEntry { asid: 0, vpn: 0x42, order: PageOrder::P4K, pfn: 0x99, writable: true };
/// tlb.fill(e);
/// assert_eq!(tlb.lookup(0, 0x42), Some(e));
/// assert_eq!(tlb.lookup(0, 0x43), None);
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocTlb {
    sets: usize,
    ways: usize,
    order: PageOrder,
    /// entries[set] = (entry, lru_stamp)
    entries: Vec<Vec<(TlbEntry, u64)>>,
    clock: u64,
}

impl SetAssocTlb {
    /// Creates a TLB with `sets × ways` entries for pages of `order`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize, order: PageOrder) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "need at least one way");
        SetAssocTlb {
            sets,
            ways,
            order,
            entries: vec![Vec::with_capacity(ways); sets],
            clock: 0,
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// The fixed page order this TLB serves.
    pub fn page_order(&self) -> PageOrder {
        self.order
    }

    #[inline]
    fn set_of(&self, vpn: u64) -> usize {
        ((vpn >> self.order.get()) & (self.sets as u64 - 1)) as usize
    }

    /// Looks up a base-page VPN; refreshes LRU on hit.
    pub fn lookup(&mut self, asid: Asid, vpn: u64) -> Option<TlbEntry> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(vpn);
        self.entries[set]
            .iter_mut()
            .find(|(e, _)| e.covers(asid, vpn))
            .map(|(e, stamp)| {
                *stamp = clock;
                *e
            })
    }

    /// Installs an entry, evicting the set's LRU entry if needed.
    ///
    /// # Panics
    ///
    /// Panics if the entry's order differs from the TLB's fixed order.
    pub fn fill(&mut self, entry: TlbEntry) {
        assert_eq!(entry.order, self.order, "entry order mismatch");
        self.clock += 1;
        let set = self.set_of(entry.vpn);
        let ways = self.ways;
        let slot = &mut self.entries[set];
        if let Some((e, stamp)) = slot
            .iter_mut()
            .find(|(e, _)| e.asid == entry.asid && e.vpn == entry.vpn)
        {
            *e = entry;
            *stamp = self.clock;
            return;
        }
        if slot.len() < ways {
            slot.push((entry, self.clock));
            return;
        }
        let victim = slot
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(i, _)| i)
            .expect("set is full");
        slot[victim] = (entry, self.clock);
    }

    /// Removes entries overlapping `[va, va + (4K << order))` for the ASID
    /// (TLB shootdown; `INVLPG` semantics generalized to a range).
    pub fn invalidate(&mut self, asid: Asid, va: VirtAddr, order: PageOrder) {
        let start = va.align_down(order.shift()).base_page_number();
        let end = start + order.base_pages();
        for set in &mut self.entries {
            set.retain(|(e, _)| {
                let e_end = e.vpn + e.order.base_pages();
                !(e.asid == asid && e.vpn < end && start < e_end)
            });
        }
    }

    /// Removes every entry of an ASID (context switch without PCID reuse).
    pub fn invalidate_asid(&mut self, asid: Asid) {
        for set in &mut self.entries {
            set.retain(|(e, _)| e.asid != asid);
        }
    }

    /// Removes everything.
    pub fn flush(&mut self) {
        for set in &mut self.entries {
            set.clear();
        }
    }

    /// Number of live entries (for occupancy statistics).
    pub fn len(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }

    /// True if the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(vpn: u64) -> TlbEntry {
        TlbEntry {
            asid: 0,
            vpn,
            order: PageOrder::P4K,
            pfn: vpn + 0x1000, // tps-lint::allow(no-magic-page-size, reason = "PFN index, not a byte size")
            writable: true,
        }
    }

    #[test]
    fn fill_lookup_roundtrip() {
        let mut t = SetAssocTlb::new(16, 4, PageOrder::P4K);
        t.fill(e(5));
        assert_eq!(t.lookup(0, 5).unwrap().pfn, 5 + 0x1000); // tps-lint::allow(no-magic-page-size, reason = "PFN index, not a byte size")
        assert!(t.lookup(0, 6).is_none());
        assert!(t.lookup(1, 5).is_none(), "wrong ASID misses");
    }

    #[test]
    fn lru_within_set() {
        // 1 set, 2 ways: VPNs 0,16,32 with 16 sets would map to set 0; use
        // sets=1 so everything collides.
        let mut t = SetAssocTlb::new(1, 2, PageOrder::P4K);
        t.fill(e(1));
        t.fill(e(2));
        assert!(t.lookup(0, 1).is_some()); // 2 becomes LRU
        t.fill(e(3));
        assert!(t.lookup(0, 2).is_none(), "LRU way evicted");
        assert!(t.lookup(0, 1).is_some());
        assert!(t.lookup(0, 3).is_some());
    }

    #[test]
    fn conflict_only_within_set() {
        let mut t = SetAssocTlb::new(16, 1, PageOrder::P4K);
        t.fill(e(0));
        t.fill(e(1)); // different set
        assert!(t.lookup(0, 0).is_some());
        assert!(t.lookup(0, 1).is_some());
        t.fill(e(16)); // same set as 0 -> evicts it (1 way)
        assert!(t.lookup(0, 0).is_none());
        assert!(t.lookup(0, 16).is_some());
    }

    #[test]
    fn refill_same_vpn_updates_in_place() {
        let mut t = SetAssocTlb::new(16, 2, PageOrder::P4K);
        t.fill(e(5));
        let mut e2 = e(5);
        e2.pfn = 0x7777;
        t.fill(e2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(0, 5).unwrap().pfn, 0x7777);
    }

    #[test]
    fn huge_page_indexing() {
        let mut t = SetAssocTlb::new(8, 4, PageOrder::P2M);
        let entry = TlbEntry {
            asid: 0,
            vpn: 512 * 7, // 2M page number 7
            order: PageOrder::P2M,
            pfn: 512 * 100,
            writable: false,
        };
        t.fill(entry);
        // Any base VPN within the 2M page hits.
        assert!(t.lookup(0, 512 * 7 + 13).is_some());
        assert!(t.lookup(0, 512 * 8).is_none());
    }

    #[test]
    fn invalidate_range_and_asid() {
        let mut t = SetAssocTlb::new(16, 4, PageOrder::P4K);
        for vpn in 0..8 {
            t.fill(e(vpn));
        }
        let mut other = e(100);
        other.asid = 3;
        t.fill(other);
        // Invalidate a 16K region (pages 2..6 partially: pages 4..8 at order 2
        // aligned from va of page 5 -> aligns to page 4).
        t.invalidate(0, VirtAddr::new(5 << 12), PageOrder::new(2).unwrap());
        for vpn in 4..8 {
            assert!(t.lookup(0, vpn).is_none(), "page {vpn} shot down");
        }
        for vpn in 0..4 {
            assert!(t.lookup(0, vpn).is_some());
        }
        assert!(t.lookup(3, 100).is_some(), "other ASID untouched");
        t.invalidate_asid(3);
        assert!(t.lookup(3, 100).is_none());
        t.flush();
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "order mismatch")]
    fn rejects_wrong_order_fill() {
        let mut t = SetAssocTlb::new(16, 4, PageOrder::P4K);
        let mut bad = e(0);
        bad.order = PageOrder::P2M;
        t.fill(bad);
    }
}
