//! Skewed-associative any-page-size TLB (Seznec, IEEE ToC 2004; cited by
//! the paper §III-A2 as an alternative to the fully-associative TPS TLB).
//!
//! A fully-associative any-size TLB is easy to reason about but costly in
//! CAM area at larger capacities. The skewed alternative gives each way
//! its own *size class* and hash function: a lookup probes every way at
//! the index its class implies, so the page size need not be known before
//! indexing. The ablation benches compare it against the 32-entry FA
//! design.

use crate::entry::{Asid, TlbEntry};
use tps_core::{PageOrder, VirtAddr};

/// One way of the skewed TLB: a direct-mapped array serving a size class.
#[derive(Clone, Debug)]
struct Way {
    /// Smallest order this way serves.
    floor: u8,
    /// Largest order of the class; the index function shifts by this so
    /// every VPN inside a page of the class maps to one set.
    ceil: u8,
    sets: Vec<Option<(TlbEntry, u64)>>,
    /// Way-specific hash multiplier (the "skew").
    skew: u64,
}

/// Skewed-associative TLB supporting any page size.
///
/// # Example
///
/// ```
/// use tps_tlb::{SkewedTlb, TlbEntry};
/// use tps_core::PageOrder;
///
/// let mut tlb = SkewedTlb::new(8); // 4 ways x 8 sets = 32 entries
/// let entry = TlbEntry {
///     asid: 0, vpn: 0x8000, order: PageOrder::new(6).unwrap(), // 256K
///     pfn: 0x2000, writable: true,
/// };
/// tlb.fill(entry);
/// assert!(tlb.lookup(0, 0x8000 + 63).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct SkewedTlb {
    ways: Vec<Way>,
    clock: u64,
}

/// Size classes of the four ways as (floor, ceil) order ranges:
/// 4K–16K, 32K–512K, 1M–16M, 32M–1G. A page fills the way whose class
/// contains its order (pages above 1 GB still work — `covers()` guards
/// correctness — but may alias across sets of the last way).
const WAY_CLASSES: [(u8, u8); 4] = [(0, 2), (3, 7), (8, 12), (13, 18)];

impl SkewedTlb {
    /// Creates a 4-way skewed TLB with `sets_per_way` sets in each way
    /// (total capacity `4 * sets_per_way`).
    ///
    /// # Panics
    ///
    /// Panics if `sets_per_way` is not a power of two.
    pub fn new(sets_per_way: usize) -> Self {
        assert!(
            sets_per_way.is_power_of_two(),
            "sets must be a power of two"
        );
        SkewedTlb {
            ways: WAY_CLASSES
                .iter()
                .enumerate()
                .map(|(i, &(floor, ceil))| Way {
                    floor,
                    ceil,
                    sets: vec![None; sets_per_way],
                    skew: 0x9e37_79b9_7f4a_7c15u64.rotate_left(17 * i as u32) | 1,
                })
                .collect(),
            clock: 0,
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.ways.iter().map(|w| w.sets.len()).sum()
    }

    fn index(way: &Way, vpn: u64) -> usize {
        let sets = way.sets.len() as u64;
        let page = vpn >> way.ceil;
        (page.wrapping_mul(way.skew) >> (64 - sets.trailing_zeros())) as usize
    }

    /// Probes all ways, each at its own size-class index.
    pub fn lookup(&mut self, asid: Asid, vpn: u64) -> Option<TlbEntry> {
        self.clock += 1;
        let clock = self.clock;
        for way in &mut self.ways {
            let idx = Self::index(way, vpn);
            if let Some((e, stamp)) = &mut way.sets[idx] {
                if e.covers(asid, vpn) {
                    *stamp = clock;
                    return Some(*e);
                }
            }
        }
        None
    }

    /// Installs an entry into its size-class way, evicting the resident
    /// entry of that set if older than any alternative placement.
    pub fn fill(&mut self, entry: TlbEntry) {
        self.clock += 1;
        // The way whose class contains the order (last way takes overflow).
        let way_idx = self
            .ways
            .iter()
            .enumerate()
            .filter(|(_, w)| w.floor <= entry.order.get())
            .max_by_key(|(_, w)| w.floor)
            .map(|(i, _)| i)
            .expect("way 0 accepts every order");
        let way = &mut self.ways[way_idx];
        let idx = Self::index(way, entry.vpn);
        way.sets[idx] = Some((entry, self.clock));
    }

    /// Shoots down entries overlapping the given page range for the ASID.
    pub fn invalidate(&mut self, asid: Asid, va: VirtAddr, order: PageOrder) {
        let start = va.align_down(order.shift()).base_page_number();
        let end = start + order.base_pages();
        for way in &mut self.ways {
            for slot in &mut way.sets {
                if let Some((e, _)) = slot {
                    let e_end = e.vpn + e.order.base_pages();
                    if e.asid == asid && e.vpn < end && start < e_end {
                        *slot = None;
                    }
                }
            }
        }
    }

    /// Removes every entry of an ASID.
    pub fn invalidate_asid(&mut self, asid: Asid) {
        for way in &mut self.ways {
            for slot in &mut way.sets {
                if matches!(slot, Some((e, _)) if e.asid == asid) {
                    *slot = None;
                }
            }
        }
    }

    /// Removes everything.
    pub fn flush(&mut self) {
        for way in &mut self.ways {
            way.sets.iter_mut().for_each(|s| *s = None);
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.ways
            .iter()
            .map(|w| w.sets.iter().filter(|s| s.is_some()).count())
            .sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(vpn: u64, order: u8) -> TlbEntry {
        let o = PageOrder::new(order).unwrap();
        TlbEntry {
            asid: 0,
            vpn: (vpn >> o.get()) << o.get(),
            order: o,
            pfn: vpn + 0x10_0000,
            writable: true,
        }
    }

    #[test]
    fn mixed_sizes_fill_and_hit() {
        let mut t = SkewedTlb::new(8);
        t.fill(e(0, 0)); // 4K -> way 0
        t.fill(e(64, 4)); // 64K -> way 3-floor class
        t.fill(e(1 << 14, 14)); // 64M -> way with floor 13
        assert!(t.lookup(0, 0).is_some());
        assert!(t.lookup(0, 64 + 7).is_some());
        assert!(t.lookup(0, (1 << 14) + 1000).is_some());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn capacity_is_ways_times_sets() {
        assert_eq!(SkewedTlb::new(8).capacity(), 32);
    }

    #[test]
    fn conflicting_fills_evict_within_one_way() {
        let mut t = SkewedTlb::new(2); // tiny: 2 sets per way
                                       // Many 4K pages: all land in way 0 (2 sets) -> heavy eviction.
        for vpn in 0..16 {
            t.fill(e(vpn, 0));
        }
        assert!(t.len() <= 8, "entries confined to capacity");
        // But a large page in another class is untouched by 4K pressure.
        t.fill(e(1 << 13, 13));
        for vpn in 16..32 {
            t.fill(e(vpn, 0));
        }
        assert!(t.lookup(0, (1 << 13) + 5).is_some(), "class isolation");
    }

    #[test]
    fn invalidation_and_flush() {
        let mut t = SkewedTlb::new(8);
        t.fill(e(0, 4));
        t.invalidate(0, VirtAddr::new(3 << 12), PageOrder::P4K);
        assert!(
            t.lookup(0, 0).is_none(),
            "overlapping large entry shot down"
        );
        t.fill(e(0, 0));
        let mut other = e(8, 0);
        other.asid = 5;
        t.fill(other);
        t.invalidate_asid(5);
        assert!(t.lookup(5, 8).is_none());
        assert!(t.lookup(0, 0).is_some());
        t.flush();
        assert!(t.is_empty());
    }

    #[test]
    fn translation_correct_through_mask() {
        let mut t = SkewedTlb::new(8);
        let entry = e(1 << 6, 6); // 256K page
        t.fill(entry);
        let hit = t.lookup(0, (1 << 6) + 13).unwrap();
        assert_eq!(hit.translate((1 << 6) + 13), entry.pfn + 13);
    }
}
