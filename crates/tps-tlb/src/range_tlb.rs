//! The Range TLB of Redundant Memory Mappings (Karakostas et al., ISCA
//! 2015) — the paper's strongest baseline.
//!
//! RMM maintains, alongside the page table, an OS *range table* of
//! unlimited-size contiguous ranges (base, limit, offset). The hardware
//! caches range-table entries in a small fully-associative Range TLB probed
//! in parallel with the L2 TLB: a hit constructs the missing 4 KB PTE
//! without walking the page table (paper §V). Because the Range TLB sits at
//! the L2 level, RMM eliminates *page walks* but no *L1* misses (Fig. 10
//! vs. Fig. 11).

use crate::entry::Asid;
use tps_core::VirtAddr;

/// A cached range translation: `[start_vpn, end_vpn)` maps to
/// `vpn + delta`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RangeEntry {
    /// Address space of the range.
    pub asid: Asid,
    /// First base-page VPN covered.
    pub start_vpn: u64,
    /// One past the last base-page VPN covered.
    pub end_vpn: u64,
    /// `pfn - vpn`, constant across the range.
    pub delta: i64,
    /// Permission of the whole range.
    pub writable: bool,
}

impl RangeEntry {
    /// True if the entry translates `(asid, vpn)`.
    #[inline]
    pub fn covers(&self, asid: Asid, vpn: u64) -> bool {
        self.asid == asid && vpn >= self.start_vpn && vpn < self.end_vpn
    }

    /// Translates a covered VPN.
    #[inline]
    pub fn translate(&self, vpn: u64) -> u64 {
        debug_assert!(vpn >= self.start_vpn && vpn < self.end_vpn);
        (vpn as i64 + self.delta) as u64
    }

    /// Number of base pages covered.
    pub fn pages(&self) -> u64 {
        self.end_vpn - self.start_vpn
    }
}

/// Fully-associative cache of range-table entries (32 entries in RMM).
///
/// # Example
///
/// ```
/// use tps_tlb::{RangeEntry, RangeTlb};
///
/// let mut rt = RangeTlb::new(32);
/// rt.fill(RangeEntry { asid: 0, start_vpn: 100, end_vpn: 10_000, delta: 500, writable: true });
/// let hit = rt.lookup(0, 5_000).unwrap();
/// assert_eq!(hit.translate(5_000), 5_500);
/// ```
#[derive(Clone, Debug)]
pub struct RangeTlb {
    capacity: usize,
    entries: Vec<(RangeEntry, u64)>,
    clock: u64,
}

impl RangeTlb {
    /// Creates a Range TLB with the given entry count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        RangeTlb {
            capacity,
            entries: Vec::with_capacity(capacity),
            clock: 0,
        }
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the range covering a VPN.
    pub fn lookup(&mut self, asid: Asid, vpn: u64) -> Option<RangeEntry> {
        self.clock += 1;
        let clock = self.clock;
        self.entries
            .iter_mut()
            .find(|(e, _)| e.covers(asid, vpn))
            .map(|(e, stamp)| {
                *stamp = clock;
                *e
            })
    }

    /// Installs a range entry, evicting the LRU one when full.
    pub fn fill(&mut self, entry: RangeEntry) {
        self.clock += 1;
        if let Some((e, stamp)) = self
            .entries
            .iter_mut()
            .find(|(e, _)| e.asid == entry.asid && e.start_vpn == entry.start_vpn)
        {
            *e = entry;
            *stamp = self.clock;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((entry, self.clock));
            return;
        }
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(i, _)| i)
            .expect("full TLB is non-empty");
        self.entries[victim] = (entry, self.clock);
    }

    /// Shoots down entries overlapping the given page range for the ASID.
    pub fn invalidate(&mut self, asid: Asid, va: VirtAddr, order: tps_core::PageOrder) {
        let start = va.align_down(order.shift()).base_page_number();
        let end = start + order.base_pages();
        self.entries
            .retain(|(e, _)| !(e.asid == asid && e.start_vpn < end && start < e.end_vpn));
    }

    /// Removes every entry of an ASID.
    pub fn invalidate_asid(&mut self, asid: Asid) {
        self.entries.retain(|(e, _)| e.asid != asid);
    }

    /// Removes everything.
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::PageOrder;

    fn r(start: u64, end: u64) -> RangeEntry {
        RangeEntry {
            asid: 0,
            start_vpn: start,
            end_vpn: end,
            delta: 1000,
            writable: true,
        }
    }

    #[test]
    fn unbounded_range_size() {
        let mut rt = RangeTlb::new(4);
        // A 64 GB range in one entry — RMM's key property.
        rt.fill(r(0, 16 << 20));
        assert!(rt.lookup(0, 10 << 20).is_some());
        assert_eq!(rt.lookup(0, 5).unwrap().translate(5), 1005);
        assert!(rt.lookup(0, 16 << 20).is_none());
    }

    #[test]
    fn negative_delta() {
        let mut rt = RangeTlb::new(4);
        rt.fill(RangeEntry {
            asid: 0,
            start_vpn: 5000,
            end_vpn: 6000,
            delta: -4000,
            writable: true,
        });
        assert_eq!(rt.lookup(0, 5500).unwrap().translate(5500), 1500);
    }

    #[test]
    fn lru_eviction_pressure() {
        // gcc-style behavior: more live ranges than entries -> thrashing.
        let mut rt = RangeTlb::new(2);
        rt.fill(r(0, 10));
        rt.fill(r(100, 110));
        assert!(rt.lookup(0, 5).is_some()); // refresh first
        rt.fill(r(200, 210));
        assert!(rt.lookup(0, 105).is_none(), "middle range evicted");
        assert!(rt.lookup(0, 5).is_some());
    }

    #[test]
    fn invalidate_overlap() {
        let mut rt = RangeTlb::new(4);
        rt.fill(r(0, 1000));
        rt.invalidate(0, VirtAddr::new(500 << 12), PageOrder::P4K);
        assert!(rt.is_empty());
        rt.fill(r(0, 1000));
        rt.invalidate(0, VirtAddr::new(1000 << 12), PageOrder::P4K);
        assert_eq!(rt.len(), 1, "adjacent page does not invalidate");
    }

    #[test]
    fn asid_isolation() {
        let mut rt = RangeTlb::new(4);
        rt.fill(r(0, 10));
        assert!(rt.lookup(9, 5).is_none());
        rt.invalidate_asid(0);
        assert!(rt.is_empty());
    }
}
