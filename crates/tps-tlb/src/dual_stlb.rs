//! The shared second-level TLB (STLB) holding 4 KB and 2 MB entries.
//!
//! Commercial STLBs (e.g. Skylake's 1536-entry unified L2 TLB) hold two
//! page sizes in one set-associative array by probing the index function of
//! each size — we model that dual probe directly.

use crate::entry::{Asid, TlbEntry};
use tps_core::inject::should_fault;
use tps_core::{FaultSite, InjectorHandle, PageOrder, VirtAddr};

/// Set-associative second-level TLB with 4 KB / 2 MB dual-probe lookup.
///
/// # Example
///
/// ```
/// use tps_tlb::{DualStlb, TlbEntry};
/// use tps_core::PageOrder;
///
/// let mut stlb = DualStlb::new(128, 12); // 1536 entries, Skylake-like
/// let e4k = TlbEntry { asid: 0, vpn: 7, order: PageOrder::P4K, pfn: 1, writable: true };
/// let e2m = TlbEntry { asid: 0, vpn: 1024, order: PageOrder::P2M, pfn: 2048, writable: true };
/// stlb.fill(e4k);
/// stlb.fill(e2m);
/// assert!(stlb.lookup(0, 7).is_some());
/// assert!(stlb.lookup(0, 1500).is_some()); // inside the 2M page
/// ```
#[derive(Clone, Debug)]
pub struct DualStlb {
    sets: usize,
    ways: usize,
    entries: Vec<Vec<(TlbEntry, u64)>>,
    clock: u64,
    injector: Option<InjectorHandle>,
    probe_misses: u64,
}

impl DualStlb {
    /// Creates an STLB with `sets × ways` entries.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "need at least one way");
        DualStlb {
            sets,
            ways,
            entries: vec![Vec::with_capacity(ways); sets],
            clock: 0,
            injector: None,
            probe_misses: 0,
        }
    }

    /// Installs (or removes) a fault injector consulted at every lookup.
    /// A [`FaultSite::StlbProbe`] hit forces the dual probe to miss, so
    /// the access falls through to the walk path — slower, never wrong.
    pub fn set_fault_injector(&mut self, injector: Option<InjectorHandle>) {
        self.injector = injector;
    }

    /// Lookups forced to miss by injected [`FaultSite::StlbProbe`] faults
    /// (degradation counter).
    pub fn probe_misses(&self) -> u64 {
        self.probe_misses
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    #[inline]
    fn set_for(&self, vpn: u64, order: PageOrder) -> usize {
        // Fibonacci (multiplicative) index hashing so power-of-two-aligned
        // VMA bases do not concentrate hot pages in one set (commercial
        // designs hash their index bits too).
        let p = vpn >> order.get();
        if self.sets == 1 {
            return 0;
        }
        let shift = 64 - self.sets.trailing_zeros();
        (p.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> shift) as usize
    }

    /// Dual-probe lookup: tries the 4 KB index then the 2 MB index.
    pub fn lookup(&mut self, asid: Asid, vpn: u64) -> Option<TlbEntry> {
        if should_fault(&self.injector, FaultSite::StlbProbe) {
            self.probe_misses += 1;
            return None;
        }
        self.clock += 1;
        let clock = self.clock;
        for order in [PageOrder::P4K, PageOrder::P2M] {
            let set = self.set_for(vpn, order);
            if let Some((e, stamp)) = self.entries[set]
                .iter_mut()
                .find(|(e, _)| e.order == order && e.covers(asid, vpn))
            {
                *stamp = clock;
                return Some(*e);
            }
        }
        None
    }

    /// Installs a 4 KB or 2 MB entry.
    ///
    /// # Panics
    ///
    /// Panics for any other page order — a dual-size STLB cannot index
    /// tailored sizes; the TPS configuration swaps in an any-size structure.
    pub fn fill(&mut self, entry: TlbEntry) {
        assert!(
            entry.order == PageOrder::P4K || entry.order == PageOrder::P2M,
            "dual STLB holds only 4K and 2M entries"
        );
        self.clock += 1;
        let set = self.set_for(entry.vpn, entry.order);
        let ways = self.ways;
        let slot = &mut self.entries[set];
        if let Some((e, stamp)) = slot
            .iter_mut()
            .find(|(e, _)| e.asid == entry.asid && e.vpn == entry.vpn && e.order == entry.order)
        {
            *e = entry;
            *stamp = self.clock;
            return;
        }
        if slot.len() < ways {
            slot.push((entry, self.clock));
            return;
        }
        // A full set with positive way count always yields a victim; fall
        // back to a plain push rather than panicking if it somehow cannot.
        match slot
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(i, _)| i)
        {
            Some(victim) => slot[victim] = (entry, self.clock),
            None => slot.push((entry, self.clock)),
        }
    }

    /// Shoots down entries overlapping the page range for the ASID.
    pub fn invalidate(&mut self, asid: Asid, va: VirtAddr, order: PageOrder) {
        let start = va.align_down(order.shift()).base_page_number();
        let end = start + order.base_pages();
        for set in &mut self.entries {
            set.retain(|(e, _)| {
                let e_end = e.vpn + e.order.base_pages();
                !(e.asid == asid && e.vpn < end && start < e_end)
            });
        }
    }

    /// Removes every entry of an ASID.
    pub fn invalidate_asid(&mut self, asid: Asid) {
        for set in &mut self.entries {
            set.retain(|(e, _)| e.asid != asid);
        }
    }

    /// Removes everything.
    pub fn flush(&mut self) {
        for set in &mut self.entries {
            set.clear();
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e4k(vpn: u64) -> TlbEntry {
        TlbEntry {
            asid: 0,
            vpn,
            order: PageOrder::P4K,
            pfn: vpn + 1,
            writable: true,
        }
    }

    fn e2m(page2m: u64) -> TlbEntry {
        TlbEntry {
            asid: 0,
            vpn: page2m * 512,
            order: PageOrder::P2M,
            pfn: page2m * 512 + 512,
            writable: true,
        }
    }

    #[test]
    fn both_sizes_hit() {
        let mut s = DualStlb::new(8, 2);
        s.fill(e4k(3));
        s.fill(e2m(5));
        assert_eq!(s.lookup(0, 3).unwrap().order, PageOrder::P4K);
        let hit = s.lookup(0, 5 * 512 + 99).unwrap();
        assert_eq!(hit.order, PageOrder::P2M);
        assert_eq!(hit.translate(5 * 512 + 99), 5 * 512 + 512 + 99);
    }

    #[test]
    fn four_k_and_two_m_share_capacity() {
        let mut s = DualStlb::new(1, 2);
        s.fill(e4k(0));
        s.fill(e2m(0));
        s.fill(e4k(1)); // evicts LRU (e4k(0))
        assert!(s.lookup(0, 0).is_some(), "covered by the 2M entry");
        assert!(s.lookup(0, 1).is_some());
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "only 4K and 2M")]
    fn rejects_tailored_orders() {
        let mut s = DualStlb::new(8, 2);
        let mut bad = e4k(0);
        bad.order = PageOrder::new(3).unwrap();
        s.fill(bad);
    }

    #[test]
    fn invalidation() {
        let mut s = DualStlb::new(8, 2);
        s.fill(e4k(3));
        s.fill(e2m(0));
        // Shooting down one 4K page inside the 2M entry kills it.
        s.invalidate(0, VirtAddr::new(7 << 12), PageOrder::P4K);
        assert!(s.lookup(0, 7).is_none());
        assert!(s.lookup(0, 3).is_some());
        s.invalidate(0, VirtAddr::new(3 << 12), PageOrder::P4K);
        assert!(s.lookup(0, 3).is_none());
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(DualStlb::new(128, 12).capacity(), 1536);
    }

    #[test]
    fn injected_probe_fault_forces_a_miss() {
        use std::cell::RefCell;
        use std::rc::Rc;
        use tps_core::{FaultPlan, FaultPlanConfig, InjectorHandle};

        let mut s = DualStlb::new(8, 2);
        s.fill(e4k(3));
        let plan = Rc::new(RefCell::new(FaultPlan::new(FaultPlanConfig {
            stlb_probe: 1.0,
            ..FaultPlanConfig::disabled(41)
        })));
        s.set_fault_injector(Some(plan.clone() as InjectorHandle));
        assert!(s.lookup(0, 3).is_none(), "probe forced to miss");
        assert_eq!(s.probe_misses(), 1);
        assert_eq!(plan.borrow().injected_at("stlb-probe"), 1);
        // The entry itself is untouched: removing the injector hits again.
        s.set_fault_injector(None);
        assert!(s.lookup(0, 3).is_some());
    }
}
