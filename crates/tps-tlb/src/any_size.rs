//! The fully-associative any-page-size TLB — the paper's TPS TLB (Fig. 7).
//!
//! Each entry carries a *page mask* derived from its page order; lookups
//! mask the incoming VPN before the tag compare, adding one gate delay.
//! The paper deploys this as a 32-entry L1 structure replacing the separate
//! 2 MB and 1 GB L1 TLBs, and we also reuse it (with a larger capacity) as
//! the TPS-mode STLB, whose design the paper leaves unspecified.

use crate::entry::{Asid, TlbEntry};
use tps_core::inject::should_fault;
use tps_core::{FaultSite, InjectorHandle, PageOrder, VirtAddr};

/// Fully-associative TLB accepting entries of any page order.
///
/// # Example
///
/// ```
/// use tps_tlb::{AnySizeTlb, TlbEntry};
/// use tps_core::PageOrder;
///
/// let mut tlb = AnySizeTlb::new(32);
/// let entry = TlbEntry {
///     asid: 0, vpn: 0x4000, order: PageOrder::new(5).unwrap(), // 128K page
///     pfn: 0x8000, writable: true,
/// };
/// tlb.fill(entry);
/// // Any base page within the 128K page hits through the mask compare.
/// assert!(tlb.lookup(0, 0x4000 + 31).is_some());
/// assert!(tlb.lookup(0, 0x4000 + 32).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct AnySizeTlb {
    capacity: usize,
    entries: Vec<(TlbEntry, u64)>,
    clock: u64,
    injector: Option<InjectorHandle>,
    fill_drops: u64,
    evict_abandons: u64,
}

impl AnySizeTlb {
    /// Creates a TLB with the given entry count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        AnySizeTlb {
            capacity,
            entries: Vec::with_capacity(capacity),
            clock: 0,
            injector: None,
            fill_drops: 0,
            evict_abandons: 0,
        }
    }

    /// Installs (or removes) a fault injector consulted at every fill and
    /// eviction. A [`FaultSite::AnySizeFill`] hit drops the fill; an
    /// [`FaultSite::AnySizeEvict`] hit evicts the LRU victim but abandons
    /// the incoming entry. Both only lower the hit rate.
    pub fn set_fault_injector(&mut self, injector: Option<InjectorHandle>) {
        self.injector = injector;
    }

    /// Fills dropped by injected [`FaultSite::AnySizeFill`] faults
    /// (degradation counter).
    pub fn fill_drops(&self) -> u64 {
        self.fill_drops
    }

    /// Evictions whose incoming entry was abandoned by injected
    /// [`FaultSite::AnySizeEvict`] faults (degradation counter).
    pub fn evict_abandons(&self) -> u64 {
        self.evict_abandons
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a base-page VPN (mask-then-compare across all entries).
    pub fn lookup(&mut self, asid: Asid, vpn: u64) -> Option<TlbEntry> {
        self.clock += 1;
        let clock = self.clock;
        self.entries
            .iter_mut()
            .find(|(e, _)| e.covers(asid, vpn))
            .map(|(e, stamp)| {
                *stamp = clock;
                *e
            })
    }

    /// Installs an entry of any order, evicting the LRU entry when full.
    ///
    /// If an existing entry covers the same page start at the same order it
    /// is updated in place.
    pub fn fill(&mut self, entry: TlbEntry) {
        if should_fault(&self.injector, FaultSite::AnySizeFill) {
            self.fill_drops += 1;
            return;
        }
        self.clock += 1;
        if let Some((e, stamp)) = self
            .entries
            .iter_mut()
            .find(|(e, _)| e.asid == entry.asid && e.vpn == entry.vpn && e.order == entry.order)
        {
            *e = entry;
            *stamp = self.clock;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((entry, self.clock));
            return;
        }
        // A full TLB with positive capacity always yields a victim; fall
        // back to a plain push rather than panicking if it somehow cannot.
        let Some(victim) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(i, _)| i)
        else {
            self.entries.push((entry, self.clock));
            return;
        };
        if should_fault(&self.injector, FaultSite::AnySizeEvict) {
            // The victim is already gone when the install fails: the slot
            // ends up empty until a later fill reuses it.
            self.evict_abandons += 1;
            self.entries.remove(victim);
            return;
        }
        self.entries[victim] = (entry, self.clock);
    }

    /// Shoots down entries overlapping the given page range for the ASID.
    pub fn invalidate(&mut self, asid: Asid, va: VirtAddr, order: PageOrder) {
        let start = va.align_down(order.shift()).base_page_number();
        let end = start + order.base_pages();
        self.entries.retain(|(e, _)| {
            let e_end = e.vpn + e.order.base_pages();
            !(e.asid == asid && e.vpn < end && start < e_end)
        });
    }

    /// Removes every entry of an ASID.
    pub fn invalidate_asid(&mut self, asid: Asid) {
        self.entries.retain(|(e, _)| e.asid != asid);
    }

    /// Removes everything.
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Iterates live entries (for occupancy statistics).
    pub fn iter(&self) -> impl Iterator<Item = &TlbEntry> {
        self.entries.iter().map(|(e, _)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(vpn: u64, order: u8) -> TlbEntry {
        TlbEntry {
            asid: 0,
            vpn,
            order: PageOrder::new(order).unwrap(),
            pfn: vpn + 0x10_0000,
            writable: true,
        }
    }

    #[test]
    fn mixed_sizes_coexist() {
        let mut t = AnySizeTlb::new(8);
        t.fill(e(0, 0)); // 4K
        t.fill(e(8, 3)); // 32K at page 8
        t.fill(e(512, 9)); // 2M at page 512
        assert!(t.lookup(0, 0).is_some());
        assert!(t.lookup(0, 10).is_some(), "inside the 32K page");
        assert!(t.lookup(0, 700).is_some(), "inside the 2M page");
        assert!(t.lookup(0, 4).is_none());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn lru_eviction() {
        let mut t = AnySizeTlb::new(2);
        t.fill(e(0, 0));
        t.fill(e(1, 0));
        assert!(t.lookup(0, 0).is_some()); // refresh 0
        t.fill(e(2, 0));
        assert!(t.lookup(0, 1).is_none(), "entry 1 was LRU");
        assert!(t.lookup(0, 0).is_some());
        assert!(t.lookup(0, 2).is_some());
    }

    #[test]
    fn translation_through_mask() {
        let mut t = AnySizeTlb::new(4);
        t.fill(e(16, 2)); // 16K page: base pages 16..20
        let hit = t.lookup(0, 19).unwrap();
        assert_eq!(hit.translate(19), 19 + 0x10_0000);
    }

    #[test]
    fn invalidate_overlapping_large_entry() {
        let mut t = AnySizeTlb::new(4);
        t.fill(e(0, 4)); // 64K page: pages 0..16
                         // Shoot down one 4K page inside it: whole entry must go (the
                         // conservative hardware behavior).
        t.invalidate(0, VirtAddr::new(5 << 12), PageOrder::P4K);
        assert!(t.lookup(0, 0).is_none());
    }

    #[test]
    fn asid_isolation() {
        let mut t = AnySizeTlb::new(4);
        let mut a = e(0, 3);
        a.asid = 1;
        let mut b = e(0, 3);
        b.asid = 2;
        b.pfn = 0x999;
        t.fill(a);
        t.fill(b);
        assert_eq!(t.lookup(1, 3).unwrap().pfn, a.pfn);
        assert_eq!(t.lookup(2, 3).unwrap().pfn, 0x999);
        t.invalidate_asid(1);
        assert!(t.lookup(1, 3).is_none());
        assert!(t.lookup(2, 3).is_some());
    }

    #[test]
    fn update_in_place_no_duplicate() {
        let mut t = AnySizeTlb::new(4);
        t.fill(e(8, 3));
        let mut updated = e(8, 3);
        updated.writable = false;
        t.fill(updated);
        assert_eq!(t.len(), 1);
        assert!(!t.lookup(0, 8).unwrap().writable);
    }

    fn hw_plan(
        cfg: tps_core::FaultPlanConfig,
    ) -> std::rc::Rc<std::cell::RefCell<tps_core::FaultPlan>> {
        std::rc::Rc::new(std::cell::RefCell::new(tps_core::FaultPlan::new(cfg)))
    }

    #[test]
    fn injected_fill_fault_drops_the_entry() {
        use tps_core::{FaultPlanConfig, InjectorHandle};
        let mut t = AnySizeTlb::new(4);
        let plan = hw_plan(FaultPlanConfig {
            any_size_fill: 1.0,
            ..FaultPlanConfig::disabled(31)
        });
        t.set_fault_injector(Some(plan.clone() as InjectorHandle));
        t.fill(e(0, 0));
        assert_eq!(t.fill_drops(), 1);
        assert!(t.is_empty(), "fill was dropped");
        assert!(t.lookup(0, 0).is_none());
        assert_eq!(plan.borrow().injected_at("any-size-fill"), 1);
    }

    #[test]
    fn injected_evict_fault_abandons_the_incoming_entry() {
        use tps_core::{FaultPlanConfig, InjectorHandle};
        let mut t = AnySizeTlb::new(2);
        t.fill(e(0, 0));
        t.fill(e(1, 0));
        let plan = hw_plan(FaultPlanConfig {
            any_size_evict: 1.0,
            ..FaultPlanConfig::disabled(32)
        });
        t.set_fault_injector(Some(plan.clone() as InjectorHandle));
        t.fill(e(2, 0));
        // The LRU victim (vpn 0) is gone, the incoming entry never landed.
        assert_eq!(t.evict_abandons(), 1);
        assert_eq!(t.len(), 1);
        assert!(t.lookup(0, 0).is_none(), "victim evicted");
        assert!(t.lookup(0, 2).is_none(), "incoming abandoned");
        assert!(t.lookup(0, 1).is_some());
        assert_eq!(plan.borrow().injected_at("any-size-evict"), 1);
        // The freed slot is reusable once the injector is removed.
        t.set_fault_injector(None);
        t.fill(e(3, 0));
        assert_eq!(t.len(), 2);
        assert!(t.lookup(0, 3).is_some());
    }
}
