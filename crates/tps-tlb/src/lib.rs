//! TLB structures for the TPS reproduction.
//!
//! Everything the paper's §III-A2 and §V evaluate at the TLB level:
//!
//! * [`SetAssocTlb`] — conventional fixed-size set-associative TLB.
//! * [`AnySizeTlb`] — the paper's TPS TLB: fully associative, one *page
//!   mask* per entry, mask-then-compare lookup (Fig. 7).
//! * [`DualStlb`] — Skylake-style unified L2 TLB with 4 KB/2 MB dual-probe.
//! * [`ColtTlb`] / [`detect_run`] — CoLT-SA coalesced TLB baseline.
//! * [`RangeTlb`] — the RMM Range TLB baseline (L2-level range cache).
//! * [`TlbHierarchy`] — the assembled two-level hierarchy in all four
//!   organizations, with hit/miss statistics.
//!
//! # Example
//!
//! ```
//! use tps_tlb::{HierarchyKind, TlbConfig, TlbHierarchy};
//! use tps_core::{LeafInfo, PageOrder, PhysAddr, PteFlags, VirtAddr};
//!
//! let mut h = TlbHierarchy::new(TlbConfig::with_kind(HierarchyKind::Tps));
//! let leaf = LeafInfo {
//!     base: PhysAddr::new(0x800_0000),
//!     order: PageOrder::new(6).unwrap(), // a 256 KB tailored page
//!     flags: PteFlags::PRESENT | PteFlags::WRITABLE,
//! };
//! let va = VirtAddr::new(0x800_0000);
//! h.fill_l1(0, va, &leaf);
//! assert!(h.lookup_l1(0, VirtAddr::new(0x803_f000)).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod any_size;
mod colt;
mod dual_stlb;
mod entry;
mod hierarchy;
mod range_tlb;
mod set_assoc;
mod skewed;

pub use any_size::AnySizeTlb;
pub use colt::{detect_run, ColtEntry, ColtTlb, COLT_WINDOW};
pub use dual_stlb::DualStlb;
pub use entry::{Asid, TlbEntry};
pub use hierarchy::{
    HierarchyKind, L2Hit, TlbConfig, TlbFaultStats, TlbHierarchy, TlbStats, Translation,
};
pub use range_tlb::{RangeEntry, RangeTlb};
pub use set_assoc::SetAssocTlb;
pub use skewed::SkewedTlb;
