//! The two-level TLB hierarchy under its four studied organizations.
//!
//! | Kind       | L1                                   | L2                              |
//! |------------|--------------------------------------|---------------------------------|
//! | `Baseline` | 64e 4K SA + 32e 2M + 4e 1G           | 1536e dual 4K/2M + 16e 1G       |
//! | `Tps`      | 64e 4K SA + **32e any-size (mask)**  | any-size (same capacity)        |
//! | `Colt`     | 64e coalesced 4K SA + 32e 2M + 4e 1G | 1536e dual 4K/2M + 16e 1G       |
//! | `Rmm`      | as Baseline                          | as Baseline + **32e Range TLB** |
//!
//! Capacities follow Table I / §III-A2 of the paper. The TPS-mode STLB is
//! modeled as a fully-associative any-size structure of the baseline STLB's
//! capacity — the paper leaves its indexing unspecified, and TPS almost
//! never reaches the STLB anyway.

use crate::any_size::AnySizeTlb;
use crate::colt::{detect_run, ColtTlb};
use crate::dual_stlb::DualStlb;
use crate::entry::{Asid, TlbEntry};
use crate::range_tlb::{RangeEntry, RangeTlb};
use crate::set_assoc::SetAssocTlb;
use crate::skewed::SkewedTlb;
use tps_core::{InjectorHandle, LeafInfo, PageOrder, PteFlags, VirtAddr};

/// Which TLB organization to build.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum HierarchyKind {
    /// Conventional per-size TLBs (reservation-THP baseline).
    #[default]
    Baseline,
    /// Tailored Page Sizes: any-size L1 TLB with page masks.
    Tps,
    /// CoLT-SA coalesced TLB baseline.
    Colt,
    /// Redundant Memory Mappings: Range TLB at the L2 level.
    Rmm,
}

/// Structure sizes (defaults follow the paper's Table I).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Which organization to build.
    pub kind: HierarchyKind,
    /// Sets of the 4 KB L1 TLB.
    pub l1_4k_sets: usize,
    /// Ways of the 4 KB L1 TLB.
    pub l1_4k_ways: usize,
    /// Entries of the 2 MB L1 TLB (baseline/CoLT/RMM).
    pub l1_2m_entries: usize,
    /// Entries of the 1 GB L1 TLB (baseline/CoLT/RMM).
    pub l1_1g_entries: usize,
    /// Entries of the any-size TPS L1 TLB.
    pub tps_l1_entries: usize,
    /// Sets of the dual-size STLB.
    pub stlb_sets: usize,
    /// Ways of the dual-size STLB.
    pub stlb_ways: usize,
    /// Entries of the 1 GB STLB.
    pub stlb_1g_entries: usize,
    /// Entries of the any-size STLB used in TPS mode.
    pub tps_stlb_entries: usize,
    /// Entries of the RMM Range TLB.
    pub range_tlb_entries: usize,
    /// Use the skewed-associative any-size TLB instead of the fully
    /// associative one for the TPS L1 (design ablation; paper §III-A2
    /// notes skewed-associative alternatives are possible).
    pub tps_l1_skewed: bool,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            kind: HierarchyKind::Baseline,
            l1_4k_sets: 16,
            l1_4k_ways: 4,
            l1_2m_entries: 32,
            l1_1g_entries: 4,
            tps_l1_entries: 32,
            stlb_sets: 128,
            stlb_ways: 12,
            stlb_1g_entries: 16,
            tps_stlb_entries: 1536 + 16,
            range_tlb_entries: 32,
            tps_l1_skewed: false,
        }
    }
}

impl TlbConfig {
    /// Table I configuration with the given organization.
    pub fn with_kind(kind: HierarchyKind) -> Self {
        TlbConfig {
            kind,
            ..Default::default()
        }
    }
}

/// The result a TLB structure produced for one access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Translation {
    /// Base-page PFN the accessed VPN maps to.
    pub pfn: u64,
    /// Whether the cached mapping permits writes.
    pub writable: bool,
}

/// Outcome of the L2-level probe.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum L2Hit {
    /// The STLB (or 1 GB STLB) provided the translation.
    Stlb(Translation),
    /// The STLB missed but the Range TLB covered the address (RMM only):
    /// the PTE is constructed without a page walk.
    Range(Translation),
    /// Both missed: a page walk is required.
    Miss,
}

/// Hit/miss counters of the hierarchy.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// L1 lookups performed (= memory accesses translated).
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits in the STLB structures.
    pub stlb_hits: u64,
    /// L2 hits provided by the Range TLB after an STLB miss.
    pub range_hits: u64,
    /// Accesses that missed every TLB level (page walks).
    pub l2_misses: u64,
}

impl TlbStats {
    /// L1 misses.
    pub fn l1_misses(&self) -> u64 {
        self.accesses - self.l1_hits
    }

    /// L1 hit rate in `[0, 1]`.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.l1_hits as f64 / self.accesses as f64
        }
    }

    /// L1 misses that still hit somewhere in the L2 level.
    pub fn l1_miss_l2_hit(&self) -> u64 {
        self.stlb_hits + self.range_hits
    }
}

/// Degradation counters accumulated by injected TLB faults, summed over
/// every any-size structure and the dual STLB of one hierarchy.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TlbFaultStats {
    /// Any-size fills dropped ([`tps_core::FaultSite::AnySizeFill`]).
    pub fill_drops: u64,
    /// Evictions whose incoming entry was abandoned
    /// ([`tps_core::FaultSite::AnySizeEvict`]).
    pub evict_abandons: u64,
    /// Dual-STLB probes forced to miss
    /// ([`tps_core::FaultSite::StlbProbe`]).
    pub stlb_probe_misses: u64,
}

impl TlbFaultStats {
    /// Total injected TLB degradations.
    pub fn total(&self) -> u64 {
        self.fill_drops + self.evict_abandons + self.stlb_probe_misses
    }
}

/// The full two-level TLB hierarchy of one core.
///
/// The hierarchy performs lookups and fills; *when* to fill which level is
/// orchestrated by the simulator's MMU so walk/fault interleaving is modeled
/// in one place.
#[derive(Clone, Debug)]
pub struct TlbHierarchy {
    kind: HierarchyKind,
    l1_4k: SetAssocTlb,
    colt_l1: Option<ColtTlb>,
    colt_l1_2m: Option<ColtTlb>,
    l1_2m: Option<AnySizeTlb>,
    l1_1g: Option<AnySizeTlb>,
    tps_l1: Option<AnySizeTlb>,
    tps_l1_skewed: Option<SkewedTlb>,
    stlb: Option<DualStlb>,
    stlb_1g: Option<AnySizeTlb>,
    tps_stlb: Option<AnySizeTlb>,
    range: Option<RangeTlb>,
    stats: TlbStats,
}

impl TlbHierarchy {
    /// Builds a hierarchy from a configuration.
    pub fn new(config: TlbConfig) -> Self {
        let kind = config.kind;
        let tps = kind == HierarchyKind::Tps;
        TlbHierarchy {
            kind,
            l1_4k: SetAssocTlb::new(config.l1_4k_sets, config.l1_4k_ways, PageOrder::P4K),
            colt_l1: (kind == HierarchyKind::Colt)
                .then(|| ColtTlb::new(config.l1_4k_sets, config.l1_4k_ways, PageOrder::P4K)),
            colt_l1_2m: (kind == HierarchyKind::Colt)
                .then(|| ColtTlb::new(8, config.l1_2m_entries / 8, PageOrder::P2M)),
            l1_2m: (!tps).then(|| AnySizeTlb::new(config.l1_2m_entries)),
            l1_1g: (!tps).then(|| AnySizeTlb::new(config.l1_1g_entries)),
            tps_l1: (tps && !config.tps_l1_skewed).then(|| AnySizeTlb::new(config.tps_l1_entries)),
            tps_l1_skewed: (tps && config.tps_l1_skewed)
                .then(|| SkewedTlb::new((config.tps_l1_entries / 4).max(1))),
            stlb: (!tps).then(|| DualStlb::new(config.stlb_sets, config.stlb_ways)),
            stlb_1g: (!tps).then(|| AnySizeTlb::new(config.stlb_1g_entries)),
            tps_stlb: tps.then(|| AnySizeTlb::new(config.tps_stlb_entries)),
            range: (kind == HierarchyKind::Rmm).then(|| RangeTlb::new(config.range_tlb_entries)),
            stats: TlbStats::default(),
        }
    }

    /// The configured organization.
    pub fn kind(&self) -> HierarchyKind {
        self.kind
    }

    /// Probes the L1 structures for one access. Counts the access.
    pub fn lookup_l1(&mut self, asid: Asid, va: VirtAddr) -> Option<Translation> {
        self.stats.accesses += 1;
        let vpn = va.base_page_number();
        let hit = self.probe_l1(asid, vpn);
        if hit.is_some() {
            self.stats.l1_hits += 1;
        }
        hit
    }

    fn probe_l1(&mut self, asid: Asid, vpn: u64) -> Option<Translation> {
        if self.colt_l1.is_some() {
            for colt in [&mut self.colt_l1, &mut self.colt_l1_2m]
                .into_iter()
                .flatten()
            {
                if let Some(e) = colt.lookup(asid, vpn) {
                    return Some(Translation {
                        pfn: e.translate(vpn),
                        writable: e.writable,
                    });
                }
            }
        } else if let Some(e) = self.l1_4k.lookup(asid, vpn) {
            return Some(Translation {
                pfn: e.translate(vpn),
                writable: e.writable,
            });
        }
        for tlb in [&mut self.tps_l1, &mut self.l1_2m, &mut self.l1_1g]
            .into_iter()
            .flatten()
        {
            if let Some(e) = tlb.lookup(asid, vpn) {
                return Some(Translation {
                    pfn: e.translate(vpn),
                    writable: e.writable,
                });
            }
        }
        if let Some(t) = &mut self.tps_l1_skewed {
            if let Some(e) = t.lookup(asid, vpn) {
                return Some(Translation {
                    pfn: e.translate(vpn),
                    writable: e.writable,
                });
            }
        }
        None
    }

    /// Probes the L2 structures (STLB — and, under RMM, the Range TLB in
    /// parallel). Counts hits/misses.
    pub fn lookup_l2(&mut self, asid: Asid, va: VirtAddr) -> L2Hit {
        let vpn = va.base_page_number();
        let stlb_hit = self
            .stlb
            .as_mut()
            .and_then(|s| s.lookup(asid, vpn))
            .or_else(|| self.stlb_1g.as_mut().and_then(|s| s.lookup(asid, vpn)))
            .or_else(|| self.tps_stlb.as_mut().and_then(|s| s.lookup(asid, vpn)));
        if let Some(e) = stlb_hit {
            self.stats.stlb_hits += 1;
            return L2Hit::Stlb(Translation {
                pfn: e.translate(vpn),
                writable: e.writable,
            });
        }
        if let Some(range) = &mut self.range {
            if let Some(r) = range.lookup(asid, vpn) {
                self.stats.range_hits += 1;
                return L2Hit::Range(Translation {
                    pfn: r.translate(vpn),
                    writable: r.writable,
                });
            }
        }
        self.stats.l2_misses += 1;
        L2Hit::Miss
    }

    /// Installs a walked leaf into the appropriate L1 structure with no
    /// contiguity information: CoLT fills degrade to single-page runs.
    pub fn fill_l1(&mut self, asid: Asid, va: VirtAddr, leaf: &LeafInfo) {
        self.fill_l1_with_probe(asid, va, leaf, |_, _| None);
    }

    /// [`Self::fill_l1`] with CoLT's PTE-cache-line contiguity probe: for
    /// a page number at the given granularity, the probe returns the
    /// `(frame, writable)` mapping of that neighbor if one of exactly that
    /// size exists. Ignored by the other organizations. The probe is a
    /// generic parameter (not `dyn`) so the per-fill neighbor checks
    /// inline into the CoLT run detection.
    pub fn fill_l1_with_probe(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        leaf: &LeafInfo,
        contiguity: impl Fn(u64, PageOrder) -> Option<(u64, bool)>,
    ) {
        let entry = TlbEntry::from_leaf(asid, va, leaf);
        match self.kind {
            HierarchyKind::Tps => {
                if entry.order == PageOrder::P4K {
                    self.l1_4k.fill(entry);
                } else if let Some(t) = &mut self.tps_l1 {
                    t.fill(entry);
                } else {
                    self.tps_l1_skewed
                        .as_mut()
                        .expect("a TPS L1 structure exists")
                        .fill(entry);
                }
            }
            HierarchyKind::Colt => {
                let g = entry.order;
                if g == PageOrder::P4K || g == PageOrder::P2M {
                    let upn = va.base_page_number() >> g.get();
                    let ufn = entry.pfn >> g.get();
                    let writable = leaf.flags.contains(PteFlags::WRITABLE);
                    let run = detect_run(asid, g, upn, ufn, writable, |u| contiguity(u, g));
                    if g == PageOrder::P4K {
                        self.colt_l1.as_mut().expect("CoLT 4K L1 exists").fill(run);
                    } else {
                        self.colt_l1_2m
                            .as_mut()
                            .expect("CoLT 2M L1 exists")
                            .fill(run);
                    }
                } else {
                    self.fill_l1_conventional_large(entry);
                }
            }
            HierarchyKind::Baseline | HierarchyKind::Rmm => {
                if entry.order == PageOrder::P4K {
                    self.l1_4k.fill(entry);
                } else {
                    self.fill_l1_conventional_large(entry);
                }
            }
        }
    }

    fn fill_l1_conventional_large(&mut self, entry: TlbEntry) {
        match entry.order {
            PageOrder::P2M => self.l1_2m.as_mut().expect("2M L1 exists").fill(entry),
            PageOrder::P1G => self.l1_1g.as_mut().expect("1G L1 exists").fill(entry),
            other => panic!("conventional hierarchy cannot hold a {other} page"),
        }
    }

    /// Installs a walked leaf into the L2 level.
    pub fn fill_l2(&mut self, asid: Asid, va: VirtAddr, leaf: &LeafInfo) {
        let entry = TlbEntry::from_leaf(asid, va, leaf);
        if let Some(stlb) = &mut self.tps_stlb {
            stlb.fill(entry);
            return;
        }
        match entry.order {
            PageOrder::P4K | PageOrder::P2M => {
                self.stlb.as_mut().expect("dual STLB exists").fill(entry)
            }
            PageOrder::P1G => self.stlb_1g.as_mut().expect("1G STLB exists").fill(entry),
            other => panic!("conventional STLB cannot hold a {other} page"),
        }
    }

    /// Installs a range into the Range TLB (no-op unless RMM).
    pub fn fill_range(&mut self, entry: RangeEntry) {
        if let Some(range) = &mut self.range {
            range.fill(entry);
        }
    }

    /// True if this hierarchy has a Range TLB (i.e. is RMM).
    pub fn has_range_tlb(&self) -> bool {
        self.range.is_some()
    }

    /// Shoots down all cached translations overlapping a page.
    pub fn invalidate_page(&mut self, asid: Asid, va: VirtAddr, order: PageOrder) {
        self.l1_4k.invalidate(asid, va, order);
        for t in [&mut self.colt_l1, &mut self.colt_l1_2m]
            .into_iter()
            .flatten()
        {
            t.invalidate(asid, va, order);
        }
        for t in [&mut self.l1_2m, &mut self.l1_1g, &mut self.tps_l1]
            .into_iter()
            .flatten()
        {
            t.invalidate(asid, va, order);
        }
        if let Some(t) = &mut self.tps_l1_skewed {
            t.invalidate(asid, va, order);
        }
        if let Some(t) = &mut self.stlb {
            t.invalidate(asid, va, order);
        }
        for t in [&mut self.stlb_1g, &mut self.tps_stlb]
            .into_iter()
            .flatten()
        {
            t.invalidate(asid, va, order);
        }
        if let Some(t) = &mut self.range {
            t.invalidate(asid, va, order);
        }
    }

    /// Removes every cached translation of an ASID.
    pub fn invalidate_asid(&mut self, asid: Asid) {
        self.l1_4k.invalidate_asid(asid);
        for t in [&mut self.colt_l1, &mut self.colt_l1_2m]
            .into_iter()
            .flatten()
        {
            t.invalidate_asid(asid);
        }
        for t in [&mut self.l1_2m, &mut self.l1_1g, &mut self.tps_l1]
            .into_iter()
            .flatten()
        {
            t.invalidate_asid(asid);
        }
        if let Some(t) = &mut self.tps_l1_skewed {
            t.invalidate_asid(asid);
        }
        if let Some(t) = &mut self.stlb {
            t.invalidate_asid(asid);
        }
        for t in [&mut self.stlb_1g, &mut self.tps_stlb]
            .into_iter()
            .flatten()
        {
            t.invalidate_asid(asid);
        }
        if let Some(t) = &mut self.range {
            t.invalidate_asid(asid);
        }
    }

    /// Flushes everything.
    pub fn flush(&mut self) {
        self.l1_4k.flush();
        for t in [&mut self.colt_l1, &mut self.colt_l1_2m]
            .into_iter()
            .flatten()
        {
            t.flush();
        }
        for t in [&mut self.l1_2m, &mut self.l1_1g, &mut self.tps_l1]
            .into_iter()
            .flatten()
        {
            t.flush();
        }
        if let Some(t) = &mut self.tps_l1_skewed {
            t.flush();
        }
        if let Some(t) = &mut self.stlb {
            t.flush();
        }
        for t in [&mut self.stlb_1g, &mut self.tps_stlb]
            .into_iter()
            .flatten()
        {
            t.flush();
        }
        if let Some(t) = &mut self.range {
            t.flush();
        }
    }

    /// Installs (or removes) a fault injector on every structure that
    /// carries injection hooks: the any-size TLBs (fill/evict sites) and
    /// the dual STLB (probe site). The set-associative, CoLT, skewed and
    /// range structures are not instrumented.
    pub fn set_fault_injector(&mut self, injector: Option<InjectorHandle>) {
        for t in [
            &mut self.l1_2m,
            &mut self.l1_1g,
            &mut self.tps_l1,
            &mut self.stlb_1g,
            &mut self.tps_stlb,
        ]
        .into_iter()
        .flatten()
        {
            t.set_fault_injector(injector.clone());
        }
        if let Some(s) = &mut self.stlb {
            s.set_fault_injector(injector);
        }
    }

    /// Degradation counters from injected TLB faults, summed across the
    /// instrumented structures.
    pub fn fault_stats(&self) -> TlbFaultStats {
        let mut out = TlbFaultStats::default();
        for t in [
            &self.l1_2m,
            &self.l1_1g,
            &self.tps_l1,
            &self.stlb_1g,
            &self.tps_stlb,
        ]
        .into_iter()
        .flatten()
        {
            out.fill_drops += t.fill_drops();
            out.evict_abandons += t.evict_abandons();
        }
        if let Some(s) = &self.stlb {
            out.stlb_probe_misses += s.probe_misses();
        }
        out
    }

    /// Current counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets counters (not contents) — used after warmup.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Mean CoLT run length (1.0 for other organizations).
    pub fn colt_mean_run_len(&self) -> f64 {
        self.colt_l1.as_ref().map_or(1.0, ColtTlb::mean_run_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::PhysAddr;
    use tps_core::GIB;

    fn leaf(pa: u64, order: u8) -> LeafInfo {
        LeafInfo {
            base: PhysAddr::new(pa),
            order: PageOrder::new(order).unwrap(),
            flags: PteFlags::PRESENT | PteFlags::WRITABLE,
        }
    }

    #[test]
    fn baseline_miss_fill_hit_cycle() {
        let mut h = TlbHierarchy::new(TlbConfig::default());
        let va = VirtAddr::new(0x1234_5000);
        assert!(h.lookup_l1(0, va).is_none());
        assert_eq!(h.lookup_l2(0, va), L2Hit::Miss);
        let l = leaf(0x8000_0000, 0);
        h.fill_l1(0, va, &l);
        h.fill_l2(0, va, &l);
        let t = h.lookup_l1(0, va).unwrap();
        assert_eq!(t.pfn, 0x8000_0000 >> 12);
        let s = h.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.l2_misses, 1);
    }

    #[test]
    fn stlb_backstops_l1_eviction() {
        let mut h = TlbHierarchy::new(TlbConfig::default());
        // Fill 65 distinct 4K pages: more than the 64-entry L1.
        for i in 0..65u64 {
            let va = VirtAddr::new(i << 12);
            let l = leaf(i << 12, 0);
            h.fill_l1(0, va, &l);
            h.fill_l2(0, va, &l);
        }
        // Page 0 was evicted from L1 but lives in the STLB.
        let va0 = VirtAddr::new(0);
        assert!(h.lookup_l1(0, va0).is_none());
        assert!(matches!(h.lookup_l2(0, va0), L2Hit::Stlb(_)));
    }

    #[test]
    fn tps_hierarchy_accepts_tailored_sizes() {
        let mut h = TlbHierarchy::new(TlbConfig::with_kind(HierarchyKind::Tps));
        let va = VirtAddr::new(GIB);
        let l = leaf(GIB, 14); // 64 MB tailored page
        h.fill_l1(0, va, &l);
        h.fill_l2(0, va, &l);
        // Anywhere within 64 MB hits the single TPS entry.
        let deep = VirtAddr::new(GIB + (63 << 20));
        let t = h.lookup_l1(0, deep).unwrap();
        assert_eq!(t.pfn, deep.base_page_number());
        assert_eq!(h.stats().l1_hits, 1);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn baseline_rejects_tailored_fill() {
        let mut h = TlbHierarchy::new(TlbConfig::default());
        h.fill_l1(0, VirtAddr::new(0), &leaf(0, 3));
    }

    #[test]
    fn colt_coalesces_with_probe() {
        let mut h = TlbHierarchy::new(TlbConfig::with_kind(HierarchyKind::Colt));
        // Pages 0..8 map contiguously to frames 0..8.
        let probe = |v: u64, g: PageOrder| (g == PageOrder::P4K && v < 8).then_some((v, true));
        h.fill_l1_with_probe(0, VirtAddr::new(0x3000), &leaf(0x3000, 0), &probe);
        // The single fill covers the whole window.
        for i in 0..8u64 {
            assert!(h.lookup_l1(0, VirtAddr::new(i << 12)).is_some(), "page {i}");
        }
        assert!(h.lookup_l1(0, VirtAddr::new(8 << 12)).is_none());
        assert!(h.colt_mean_run_len() > 7.9);
    }

    #[test]
    fn rmm_range_hit_after_stlb_miss() {
        let mut h = TlbHierarchy::new(TlbConfig::with_kind(HierarchyKind::Rmm));
        h.fill_range(RangeEntry {
            asid: 0,
            start_vpn: 0x1000, // tps-lint::allow(no-magic-page-size, reason = "VPN index, not a byte size")
            end_vpn: 0x10_0000,
            delta: 0x5000,
            writable: true,
        });
        let va = VirtAddr::new(0x8765 << 12);
        assert!(h.lookup_l1(0, va).is_none());
        match h.lookup_l2(0, va) {
            L2Hit::Range(t) => assert_eq!(t.pfn, 0x8765 + 0x5000),
            other => panic!("expected range hit, got {other:?}"),
        }
        assert_eq!(h.stats().range_hits, 1);
    }

    #[test]
    fn baseline_ignores_range_fill() {
        let mut h = TlbHierarchy::new(TlbConfig::default());
        assert!(!h.has_range_tlb());
        h.fill_range(RangeEntry {
            asid: 0,
            start_vpn: 0,
            end_vpn: 100,
            delta: 0,
            writable: true,
        });
        assert_eq!(h.lookup_l2(0, VirtAddr::new(0x5000)), L2Hit::Miss);
    }

    #[test]
    fn shootdown_reaches_every_level() {
        let mut h = TlbHierarchy::new(TlbConfig::default());
        let va = VirtAddr::new(0x7000);
        let l = leaf(0x9000, 0);
        h.fill_l1(0, va, &l);
        h.fill_l2(0, va, &l);
        h.invalidate_page(0, va, PageOrder::P4K);
        assert!(h.lookup_l1(0, va).is_none());
        assert_eq!(h.lookup_l2(0, va), L2Hit::Miss);
    }

    #[test]
    fn asid_isolation_across_hierarchy() {
        let mut h = TlbHierarchy::new(TlbConfig::with_kind(HierarchyKind::Tps));
        let va = VirtAddr::new(GIB);
        let l = leaf(GIB, 10);
        h.fill_l1(1, va, &l);
        assert!(h.lookup_l1(2, va).is_none());
        assert!(h.lookup_l1(1, va).is_some());
        h.invalidate_asid(1);
        assert!(h.lookup_l1(1, va).is_none());
    }

    #[test]
    fn skewed_tps_l1_serves_tailored_sizes() {
        let mut config = TlbConfig::with_kind(HierarchyKind::Tps);
        config.tps_l1_skewed = true;
        let mut h = TlbHierarchy::new(config);
        let va = VirtAddr::new(GIB);
        let l = leaf(GIB, 14);
        h.fill_l1(0, va, &l);
        assert!(h.lookup_l1(0, VirtAddr::new(GIB + (63 << 20))).is_some());
        h.invalidate_page(0, va, PageOrder::new(14).unwrap());
        assert!(h.lookup_l1(0, va).is_none());
    }

    #[test]
    fn stats_reset() {
        let mut h = TlbHierarchy::new(TlbConfig::default());
        h.lookup_l1(0, VirtAddr::new(0));
        assert_eq!(h.stats().accesses, 1);
        h.reset_stats();
        assert_eq!(h.stats().accesses, 0);
    }

    #[test]
    fn hit_rate_computation() {
        let mut s = TlbStats::default();
        assert_eq!(s.l1_hit_rate(), 1.0, "vacuous");
        s.accesses = 10;
        s.l1_hits = 9;
        s.stlb_hits = 1;
        assert!((s.l1_hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(s.l1_misses(), 1);
        assert_eq!(s.l1_miss_l2_hit(), 1);
    }
}
