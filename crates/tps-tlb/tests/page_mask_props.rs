//! Property tests for the per-entry page-mask logic:
//!
//! * the any-size TLB must hit for *every* base page inside an installed
//!   entry's power-of-two page — and for none outside it — at any order;
//! * the dual STLB's two probes (4 KB-indexed and 2 MB-indexed) must
//!   agree with an unbounded shadow on hit/miss and on the translation,
//!   whatever mix of page sizes was installed.

use proptest::prelude::*;
use tps_core::rng::Rng;
use tps_core::PageOrder;
use tps_tlb::{AnySizeTlb, DualStlb, TlbEntry};

/// A random entry of exactly `order`, with vpn/pfn aligned to the page.
fn aligned_entry(rng: &mut Rng, order: PageOrder) -> TlbEntry {
    let align = |n: u64| (n >> order.get()) << order.get();
    TlbEntry {
        asid: rng.below(2) as u16,
        vpn: align(rng.below(1 << 24)),
        pfn: align(rng.below(1 << 24)),
        order,
        writable: rng.chance(0.5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-entry page-mask matching at a random power-of-two order: one
    /// installed entry hits for every offset inside its page with the
    /// exact offset-preserving translation, and misses just outside its
    /// boundaries, for a different ASID, and for distant addresses.
    #[test]
    fn any_size_mask_covers_the_page_and_nothing_else(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        // Random order from 4 KB up to 1 GB (relative order 0..=18).
        let order = PageOrder::new(rng.below(19) as u8).unwrap();
        let e = aligned_entry(&mut rng, order);
        let mut tlb = AnySizeTlb::new(4);
        tlb.fill(e);

        let pages = order.base_pages();
        // Inside: first, last, and random interior base pages all hit.
        for probe in [0, pages - 1, rng.below(pages), rng.below(pages)] {
            let vpn = e.vpn + probe;
            let hit = tlb.lookup(e.asid, vpn);
            prop_assert!(hit.is_some(), "missed inside the page at +{probe}");
            prop_assert_eq!(hit.unwrap().translate(vpn), e.pfn + probe);
        }
        // Outside: one base page past either boundary misses.
        prop_assert!(tlb.lookup(e.asid, e.vpn + pages).is_none());
        if e.vpn > 0 {
            prop_assert!(tlb.lookup(e.asid, e.vpn - 1).is_none());
        }
        // Same address, other ASID: the mask is tagged, not global.
        prop_assert!(tlb.lookup(e.asid ^ 1, e.vpn).is_none());
    }

    /// Dual-probe hit/miss agreement: with enough ways that nothing is
    /// ever evicted, the STLB hits exactly when some installed 4 KB or
    /// 2 MB entry covers the probe, and the translation it returns is one
    /// an install justifies.
    #[test]
    fn dual_stlb_probes_agree_with_unbounded_shadow(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        // 64 ways ≥ 48 installs: even a worst-case set never evicts, so
        // capacity cannot excuse a miss.
        let mut tlb = DualStlb::new(8, 64);
        let mut shadow: Vec<TlbEntry> = Vec::new();
        for _ in 0..48 {
            let order = if rng.chance(0.5) { PageOrder::P4K } else { PageOrder::P2M };
            let e = aligned_entry(&mut rng, order);
            tlb.fill(e);
            shadow.push(e);
        }
        for _ in 0..256 {
            // Half the probes target installed pages so hits actually occur.
            let (asid, vpn) = if rng.chance(0.5) {
                let e = &shadow[rng.below(shadow.len() as u64) as usize];
                (e.asid, e.vpn + rng.below(e.order.base_pages()))
            } else {
                (rng.below(2) as u16, rng.below(1 << 24))
            };
            let covered = shadow.iter().any(|e| e.covers(asid, vpn));
            match tlb.lookup(asid, vpn) {
                Some(hit) => {
                    let justified = shadow.iter().any(|e| {
                        e.covers(asid, vpn) && e.translate(vpn) == hit.translate(vpn)
                    });
                    prop_assert!(justified, "hit not justified by any install");
                }
                None => prop_assert!(
                    !covered,
                    "missed a covered probe with eviction impossible (asid {asid}, vpn {vpn:#x})"
                ),
            }
        }
    }
}
