//! Property tests pitting every TLB structure against a naive shadow
//! model: an unbounded map of installed translations. Any hit a structure
//! produces must agree with the shadow; capacity only ever causes misses,
//! never wrong translations.

use proptest::prelude::*;
use tps_core::rng::Rng;
use tps_core::{PageOrder, VirtAddr};
use tps_tlb::{AnySizeTlb, DualStlb, RangeEntry, RangeTlb, SetAssocTlb, TlbEntry};

/// The shadow: a list of installed entries, newest wins on overlap.
#[derive(Default)]
struct Shadow {
    entries: Vec<TlbEntry>,
}

impl Shadow {
    fn install(&mut self, e: TlbEntry) {
        self.entries.push(e);
    }

    /// The translation the most recent covering install would give.
    fn translate(&self, asid: u16, vpn: u64) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.covers(asid, vpn))
            .map(|e| e.translate(vpn))
    }
}

fn arbitrary_entry(rng: &mut Rng, max_order: u8) -> TlbEntry {
    let order = PageOrder::new(rng.below(max_order as u64 + 1) as u8).unwrap();
    let vpn = (rng.below(1 << 20) >> order.get()) << order.get();
    let pfn = (rng.below(1 << 20) >> order.get()) << order.get();
    TlbEntry {
        asid: rng.below(2) as u16,
        vpn,
        order,
        pfn,
        writable: rng.chance(0.5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fully-associative any-size TLB: every hit matches the shadow.
    #[test]
    fn any_size_hits_agree_with_shadow(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let mut tlb = AnySizeTlb::new(8);
        let mut shadow = Shadow::default();
        for _ in 0..200 {
            if rng.chance(0.5) {
                let e = arbitrary_entry(&mut rng, 12);
                tlb.fill(e);
                shadow.install(e);
            } else {
                let asid = rng.below(2) as u16;
                let vpn = rng.below(1 << 20);
                if let Some(hit) = tlb.lookup(asid, vpn) {
                    // A hit must be *a* valid installed translation. With
                    // overlapping installs the shadow's newest wins, but the
                    // TLB may legitimately still hold an older overlapping
                    // entry only if no newer overlapping install happened —
                    // our fill replaces same-(vpn,order) entries, so check
                    // the hit exists somewhere in the install history.
                    let valid = shadow.entries.iter().any(|e| {
                        e.covers(asid, vpn) && e.translate(vpn) == hit.translate(vpn)
                    });
                    prop_assert!(valid, "hit not justified by any install");
                }
            }
        }
    }

    /// Set-associative fixed-size TLB: hits agree with the shadow exactly
    /// (same-page fills replace in place, so the newest always wins).
    #[test]
    fn set_assoc_hits_agree_with_shadow(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let mut tlb = SetAssocTlb::new(4, 2, PageOrder::P4K);
        let mut shadow = Shadow::default();
        for _ in 0..300 {
            if rng.chance(0.5) {
                let mut e = arbitrary_entry(&mut rng, 0);
                e.order = PageOrder::P4K;
                tlb.fill(e);
                shadow.install(e);
            } else {
                let asid = rng.below(2) as u16;
                let vpn = rng.below(1 << 20);
                if let Some(hit) = tlb.lookup(asid, vpn) {
                    prop_assert_eq!(
                        Some(hit.translate(vpn)),
                        shadow.translate(asid, vpn),
                        "stale translation returned"
                    );
                }
            }
        }
    }

    /// Dual-probe STLB: hits agree with the newest covering install.
    #[test]
    fn dual_stlb_hits_agree_with_shadow(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let mut tlb = DualStlb::new(8, 2);
        let mut shadow = Shadow::default();
        for _ in 0..300 {
            if rng.chance(0.5) {
                let mut e = arbitrary_entry(&mut rng, 0);
                e.order = if rng.chance(0.3) { PageOrder::P2M } else { PageOrder::P4K };
                e.vpn = (e.vpn >> e.order.get()) << e.order.get();
                e.pfn = (e.pfn >> e.order.get()) << e.order.get();
                tlb.fill(e);
                shadow.install(e);
            } else {
                let asid = rng.below(2) as u16;
                let vpn = rng.below(1 << 20);
                if let Some(hit) = tlb.lookup(asid, vpn) {
                    let valid = shadow.entries.iter().any(|e| {
                        e.covers(asid, vpn) && e.translate(vpn) == hit.translate(vpn)
                    });
                    prop_assert!(valid);
                }
            }
        }
    }

    /// Range TLB: hits always come from an installed, covering range.
    #[test]
    fn range_tlb_hits_agree_with_installs(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let mut tlb = RangeTlb::new(4);
        let mut installed: Vec<RangeEntry> = Vec::new();
        for _ in 0..200 {
            if rng.chance(0.4) {
                let start = rng.below(1 << 18);
                let len = 1 + rng.below(1 << 14);
                let e = RangeEntry {
                    asid: rng.below(2) as u16,
                    start_vpn: start,
                    end_vpn: start + len,
                    delta: rng.below(1 << 18) as i64 - (1 << 17),
                    writable: rng.chance(0.5),
                };
                tlb.fill(e);
                installed.push(e);
            } else {
                let asid = rng.below(2) as u16;
                let vpn = rng.below(1 << 18);
                if let Some(hit) = tlb.lookup(asid, vpn) {
                    let justified = installed.iter().any(|e| {
                        e.asid == asid
                            && e.start_vpn == hit.start_vpn
                            && e.end_vpn == hit.end_vpn
                            && e.delta == hit.delta
                    });
                    prop_assert!(justified);
                    prop_assert!(hit.covers(asid, vpn));
                }
            }
        }
    }

    /// Invalidation completeness: after shooting down a range, no structure
    /// returns a translation overlapping it.
    #[test]
    fn invalidation_is_complete(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let mut tlb = AnySizeTlb::new(16);
        for _ in 0..50 {
            tlb.fill(arbitrary_entry(&mut rng, 10));
        }
        // Shoot down a random 4 MB-aligned region for ASID 0.
        let kill_order = PageOrder::new(10).unwrap();
        let kill_va = VirtAddr::new((rng.below(1 << 10) << 10) << 12).align_down(kill_order.shift());
        tlb.invalidate(0, kill_va, kill_order);
        let start = kill_va.base_page_number();
        for probe in 0..32 {
            let vpn = start + probe * (kill_order.base_pages() / 32).max(1);
            prop_assert!(tlb.lookup(0, vpn).is_none(), "survived shootdown at {vpn}");
        }
    }
}
