//! Tour of the OS-level mechanisms beyond the headline experiments:
//! fork + copy-on-write, `mprotect` splitting, page merging, compaction,
//! fine-grained dirty tracking, and trace record/replay.
//!
//! ```sh
//! cargo run --release --example os_features
//! ```

use tps::core::{VirtAddr, BASE_PAGE_SIZE};
use tps::os::{CowPolicy, Os, PolicyConfig, PolicyKind};
use tps::sim::{MachineBuilder, MachineConfig, Mechanism, TenantSpec};
use tps::wl::{replay, Event, Gups, GupsParams, Recorder, Workload, WorkloadProfile};

fn main() {
    cow_demo();
    mprotect_demo();
    trace_demo();
}

/// Fork a process, write from the child, and watch CoW resolve under both
/// of the paper's §III-C3 strategies.
fn cow_demo() {
    println!("== fork + copy-on-write ==");
    for policy in [CowPolicy::CopyWholePage, CowPolicy::CopySmallest] {
        let mut os = Os::new(256 << 20, PolicyConfig::new(PolicyKind::Tps));
        os.set_cow_policy(policy);
        let parent = os.spawn();
        let vma = os.mmap(parent, 256 << 10).unwrap();
        let mut va = vma.base();
        while va < vma.end() {
            os.handle_fault(parent, va, true).unwrap();
            va = VirtAddr::new(va.value() + BASE_PAGE_SIZE);
        }
        let (child, _sds) = os.fork(parent);
        // The child writes one word in the middle of the 256 KB page.
        os.handle_cow_fault(child, vma.base() + (100 << 10))
            .unwrap();
        let stats = os.stats();
        println!(
            "  {policy:?}: copied {} KB in {} CoW fault(s); child census: {:?}",
            stats.cow_bytes_copied >> 10,
            stats.cow_faults,
            os.process(child)
                .page_table()
                .page_census()
                .iter()
                .map(|(o, n)| format!("{}x{}", n, o.label()))
                .collect::<Vec<_>>()
        );
    }
}

/// Protect part of a tailored page read-only: it splits; re-allow writes
/// and merge it back together.
fn mprotect_demo() {
    println!("\n== mprotect split / page merge ==");
    let mut os = Os::new(256 << 20, PolicyConfig::new(PolicyKind::Tps));
    os.set_fine_grained_ad(true);
    let pid = os.spawn();
    let vma = os.mmap(pid, 128 << 10).unwrap();
    let mut va = vma.base();
    while va < vma.end() {
        os.handle_fault(pid, va, true).unwrap();
        va = VirtAddr::new(va.value() + BASE_PAGE_SIZE);
    }
    let census = |os: &Os| {
        os.process(pid)
            .page_table()
            .page_census()
            .iter()
            .map(|(o, n)| format!("{}x{}", n, o.label()))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("  after faulting:  {}", census(&os));
    os.mprotect(pid, vma.base() + (32 << 10), 32 << 10, false)
        .unwrap();
    println!("  after mprotect:  {}", census(&os));
    os.mprotect(pid, vma.base(), 128 << 10, true).unwrap();
    let merges = os.merge_pages(pid);
    println!("  after {merges} merges: {}", census(&os));
    // Fine-grained dirty accounting: dirty three sixteenths of the page.
    for i in [0u64, 7, 12] {
        os.hw_mark_accessed(pid, VirtAddr::new(vma.base().value() + i * (8 << 10)), true);
    }
    println!(
        "  swap-out would write {} KB of the {} KB page (dirty vector)",
        os.dirty_writeback_bytes(pid, vma.base()) >> 10,
        128
    );
}

/// Record a workload to a trace, then replay the trace through a machine.
fn trace_demo() {
    println!("\n== trace record / replay ==");
    let inner = Gups::new(GupsParams {
        table_bytes: 4 << 20,
        updates: 50_000,
        seed: 3,
    });
    // Record while simulating: the recorder wraps the workload, and the
    // step API drives an externally-fed tenant event by event.
    let mut buf = Vec::new();
    let mut recorder = Recorder::new(inner, &mut buf);
    let mut machine =
        MachineBuilder::new(MachineConfig::for_mechanism(Mechanism::Tps).with_memory(64 << 20))
            .tenant(TenantSpec::external("gups"))
            .build()
            .expect("one tenant builds");
    while let Some(e) = recorder.next_event() {
        machine.step(0, e).expect("replayed event is well-formed");
    }
    let live = machine.counters(0).measured.mem.clone();
    let events = recorder.events_recorded();
    drop(recorder);
    println!(
        "  recorded {events} events ({} KB of trace) while simulating: {} L1 misses",
        buf.len() >> 10,
        live.l1_misses()
    );
    let replayed = replay(
        std::io::Cursor::new(buf.clone()),
        WorkloadProfile::named("gups"),
    )
    .unwrap();
    let again =
        MachineBuilder::new(MachineConfig::for_mechanism(Mechanism::Tps).with_memory(64 << 20))
            .tenant(TenantSpec::workload(replayed))
            .build()
            .expect("one tenant builds")
            .run()
            .into_solo();
    println!(
        "  replay reproduces the run exactly: {} L1 misses ({})",
        again.mem.l1_misses(),
        if again.mem == live {
            "identical"
        } else {
            "DIFFERENT!"
        }
    );
    // Traces also make ad-hoc experiments easy: hand-written event streams.
    let handwritten = "M 0 8192\nA 0 0 W\nA 0 4096 R\nB\nA 0 0 R\n";
    let mut wl = replay(
        handwritten.as_bytes(),
        WorkloadProfile::named("handwritten"),
    )
    .unwrap();
    let mut m3 =
        MachineBuilder::new(MachineConfig::for_mechanism(Mechanism::Thp).with_memory(16 << 20))
            .tenant(TenantSpec::external("handwritten"))
            .build()
            .expect("one tenant builds");
    while let Some(e) = wl.next_event() {
        m3.step(0, e).expect("replayed event is well-formed");
    }
    let counters = m3.counters(0);
    println!(
        "  hand-written trace: {} accesses, {} in measured region",
        counters.full.accesses, counters.measured.accesses
    );
    let _ = Event::StatsBarrier; // (the `B` line above)
}
