//! Compare all translation mechanisms on one workload — a miniature of
//! the paper's Fig. 10/11/13.
//!
//! ```sh
//! cargo run --release --example policy_comparison [benchmark]
//! ```
//!
//! `benchmark` is any suite name (`gups`, `graph500`, `xsbench`,
//! `dbx1000`, `gcc`, `mcf`, ...); default `xsbench`.

use tps::sim::{MachineBuilder, MachineConfig, Mechanism, TenantSpec, TimingModel};
use tps::wl::{build, SuiteScale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "xsbench".into());
    let scale = SuiteScale::Small;
    let model = TimingModel::default();

    println!("benchmark: {name} (scale: small)\n");
    println!(
        "{:>10} {:>12} {:>10} {:>12} {:>10} {:>9}",
        "mechanism", "L1 misses", "hit rate", "walk refs", "OS cycles", "speedup"
    );

    let mechanisms = [
        Mechanism::Only4K,
        Mechanism::Thp,
        Mechanism::Colt,
        Mechanism::Rmm,
        Mechanism::Tps,
        Mechanism::TpsEager,
    ];
    let mut baseline_total = None;
    for mech in mechanisms {
        let config = MachineConfig::for_mechanism(mech).with_memory(scale.recommended_memory());
        let stats = MachineBuilder::new(config)
            .tenant(TenantSpec::boxed(build(&name, scale)))
            .build()
            .expect("one tenant builds")
            .run()
            .into_solo();
        let timing = model.evaluate(&stats, false);
        // Speedups are reported relative to the paper's baseline (THP).
        if mech == Mechanism::Thp {
            baseline_total = Some(timing.total());
        }
        let speedup = baseline_total
            .map(|b| format!("{:.3}x", b / timing.total()))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>10} {:>12} {:>9.2}% {:>12} {:>10} {:>9}",
            mech.label(),
            stats.mem.l1_misses(),
            100.0 * stats.mem.l1_hit_rate(),
            stats.walk_refs,
            stats.os.op_cycles,
            speedup
        );
    }
    println!("\n(speedup is relative to the THP baseline, as in the paper)");
}
