//! Page-size census (paper Fig. 18): run the whole evaluation suite under
//! TPS and print which page sizes each benchmark ends up using — the
//! small number of tailored pages is what makes the 32-entry TPS TLB
//! sufficient.
//!
//! ```sh
//! cargo run --release --example page_size_census
//! ```

use tps::sim::{MachineBuilder, MachineConfig, Mechanism, TenantSpec};
use tps::wl::{build, suite_names, SuiteScale};

fn main() {
    let scale = SuiteScale::Small;
    println!(
        "{:>10}  {:>6}  {:>8}  census (size x count)",
        "benchmark", "pages", "largest"
    );
    for name in suite_names() {
        let config =
            MachineConfig::for_mechanism(Mechanism::Tps).with_memory(scale.recommended_memory());
        let stats = MachineBuilder::new(config)
            .tenant(TenantSpec::boxed(build(name, scale)))
            .build()
            .expect("one tenant builds")
            .run()
            .into_solo();
        let total: u64 = stats.page_census.values().sum();
        let largest = stats
            .page_census
            .keys()
            .max()
            .map(|o| o.label())
            .unwrap_or_default();
        let census = stats
            .page_census
            .iter()
            .map(|(o, n)| format!("{}x{}", o.label(), n))
            .collect::<Vec<_>>()
            .join(" ");
        println!("{name:>10}  {total:>6}  {largest:>8}  {census}");
    }
    println!("\nCompare: at 4 KB only, a 256 MB footprint needs 65,536 PTEs;");
    println!("TPS covers the same memory with a handful of tailored pages.");
}
