//! Quickstart: simulate one workload under Tailored Page Sizes and print
//! what the TLB saw.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tps::core::GIB;
use tps::prelude::*;

fn main() {
    // A machine per the paper's Table I, running the TPS mechanism:
    // reservation-based paging with power-of-two promotion, the 32-entry
    // any-size L1 TLB, and the tailored page table.
    let config = MachineConfig::default()
        .with_policy(PolicyKind::Tps)
        .with_memory(GIB);

    // GUPS: random read-modify-writes over a 256 MB table — the
    // adversarial TLB workload. `Initialized` adds the startup page-touch
    // sweep every real application performs.
    let workload = tps::wl::Initialized::new(Gups::new(GupsParams {
        table_bytes: 256 << 20,
        updates: 500_000,
        seed: 42,
    }));

    let stats = MachineBuilder::new(config)
        .tenant(TenantSpec::workload(workload))
        .build()
        .expect("one tenant builds")
        .run()
        .into_solo();

    println!("workload:            {}", stats.name);
    println!("accesses (measured): {}", stats.mem.accesses);
    println!(
        "L1 TLB hit rate:     {:.3}%",
        100.0 * stats.mem.l1_hit_rate()
    );
    println!("L1 TLB misses:       {}", stats.mem.l1_misses());
    println!("page walks:          {}", stats.walks);
    println!("walk memory refs:    {}", stats.walk_refs);
    println!("page faults:         {}", stats.os.faults);
    println!("page promotions:     {}", stats.os.promotions);
    println!("resident memory:     {} MB", stats.resident_bytes >> 20);

    println!("\npage census (what the 256 MB table became):");
    for (order, count) in &stats.page_census {
        println!("  {:>5} pages: {count}", order.label());
    }

    // The paper's timing decomposition: T = T_IDEAL + T_L1DTLBM + T_PW.
    let timing = tps::sim::TimingModel::default().evaluate(&stats, false);
    println!(
        "\ntiming (cycles): ideal={:.0} l1miss={:.0} walks={:.0}",
        timing.t_ideal, timing.t_l1dtlbm, timing.t_pw
    );
}
