//! Implementing your own workload: drive the simulator with a custom
//! access pattern by implementing the [`Workload`] trait.
//!
//! The example models a simple hash join: build a hash table from one
//! relation (sequential scan + random inserts), then probe it from a
//! second relation.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use tps::prelude::*;
use tps::wl::WorkloadProfile;
use tps_core::rng::Rng;
use tps_core::GIB;

const R_BUILD: u32 = 0; // build-side relation, scanned sequentially
const R_PROBE: u32 = 1; // probe-side relation, scanned sequentially
const R_HASH: u32 = 2; // hash table, accessed randomly

struct HashJoin {
    build_bytes: u64,
    probe_bytes: u64,
    hash_bytes: u64,
    rng: Rng,
    phase: u8,
    cursor: u64,
    pending_hash: Option<u64>,
}

impl HashJoin {
    fn new(build_mb: u64, probe_mb: u64, seed: u64) -> Self {
        HashJoin {
            build_bytes: build_mb << 20,
            probe_bytes: probe_mb << 20,
            hash_bytes: (build_mb * 2) << 20,
            rng: Rng::new(seed),
            phase: 0,
            cursor: 0,
            pending_hash: None,
        }
    }
}

impl Workload for HashJoin {
    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "hashjoin".into(),
            base_cpi: 0.7,
            insts_per_access: 6.0,
            l1_miss_criticality: 0.65,
            walk_savable: 0.7,
            smt_slowdown: 1.3,
        }
    }

    fn next_event(&mut self) -> Option<Event> {
        // Hash-table access follows each tuple read.
        if let Some(offset) = self.pending_hash.take() {
            return Some(Event::Access {
                region: R_HASH,
                offset,
                write: self.phase == 1, // inserts during build, reads during probe
            });
        }
        loop {
            match self.phase {
                0 => {
                    self.phase = 1;
                    self.cursor = 0;
                    return Some(Event::Mmap {
                        region: R_BUILD,
                        bytes: self.build_bytes,
                    });
                }
                1 if self.cursor == 0 => {
                    self.cursor = 1;
                    return Some(Event::Mmap {
                        region: R_PROBE,
                        bytes: self.probe_bytes,
                    });
                }
                1 if self.cursor == 1 => {
                    self.cursor = 2;
                    return Some(Event::Mmap {
                        region: R_HASH,
                        bytes: self.hash_bytes,
                    });
                }
                1 => {
                    // Build: scan tuples (128 B each), insert into the table.
                    let offset = (self.cursor - 2) * 128;
                    if offset >= self.build_bytes {
                        self.phase = 2;
                        self.cursor = 0;
                        continue;
                    }
                    self.cursor += 1;
                    self.pending_hash = Some(self.rng.below(self.hash_bytes / 16) * 16);
                    return Some(Event::Access {
                        region: R_BUILD,
                        offset,
                        write: false,
                    });
                }
                2 => {
                    // Probe: scan the probe side, look up the table.
                    let offset = self.cursor * 128;
                    if offset >= self.probe_bytes {
                        return None;
                    }
                    self.cursor += 1;
                    self.pending_hash = Some(self.rng.below(self.hash_bytes / 16) * 16);
                    return Some(Event::Access {
                        region: R_PROBE,
                        offset,
                        write: false,
                    });
                }
                _ => return None,
            }
        }
    }
}

fn main() {
    for policy in [PolicyKind::Thp, PolicyKind::Tps] {
        let config = MachineConfig::default()
            .with_policy(policy)
            .with_memory(GIB);
        let stats = MachineBuilder::new(config)
            .tenant(TenantSpec::workload(HashJoin::new(64, 128, 7)))
            .build()
            .expect("one tenant builds")
            .run()
            .into_solo();
        println!(
            "{:<4}  L1 hit rate {:>7.3}%   misses {:>8}   walk refs {:>8}   pages {:?}",
            policy.label(),
            100.0 * stats.mem.l1_hit_rate(),
            stats.mem.l1_misses(),
            stats.walk_refs,
            stats
                .page_census
                .iter()
                .map(|(o, n)| format!("{}x{}", n, o.label()))
                .collect::<Vec<_>>()
        );
    }
}
