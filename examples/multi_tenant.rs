//! Multi-tenant machine: 64 address spaces sharing one physical memory
//! and one ASID-tagged TLB hierarchy — plus one memory-capped noisy
//! neighbor that the machine kills mid-run without disturbing anyone.
//!
//! Each tenant runs a different suite benchmark at test scale with its
//! own seed; the extra 65th tenant maps and scribbles memory without
//! bound until its per-tenant cap fires. After the run, we report the
//! kill, per-tenant TLB reach (derived from each address space's page
//! census) and a snapshot of how fragmented the shared buddy allocator
//! ended up.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use tps::core::{PageOrder, TenantFaultCause};
use tps::sim::{MachineBuilder, MachineConfig, Mechanism, Scheduler, TenantOutcome, TenantSpec};
use tps::tlb::Asid;
use tps::wl::{suite_names, Event, SuiteScale, Workload, WorkloadProfile};

const TENANTS: usize = 64;
/// Slot of the capped noisy neighbor (the 65th tenant).
const NOISY: usize = TENANTS;
/// Entry count of the modeled L1 data TLB, used to turn a mean page
/// size into a reach figure.
const L1_ENTRIES: u64 = 64;
/// The noisy neighbor's per-tenant memory cap.
const NOISY_CAP: u64 = 8 << 20;

/// A tenant that maps a fresh 2 MB region, writes it end to end, and
/// repeats forever — only its memory cap stops it.
struct NoisyNeighbor {
    region: u32,
    step: u64,
}

impl Workload for NoisyNeighbor {
    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile::named("hog")
    }

    fn next_event(&mut self) -> Option<Event> {
        const REGION_BYTES: u64 = 2 << 20;
        const WRITES_PER_REGION: u64 = 32;
        let phase = self.step % (WRITES_PER_REGION + 1);
        self.step += 1;
        if phase == 0 {
            Some(Event::Mmap {
                region: self.region,
                bytes: REGION_BYTES,
            })
        } else {
            let event = Event::Access {
                region: self.region,
                offset: (phase - 1) * (REGION_BYTES / WRITES_PER_REGION),
                write: true,
            };
            if phase == WRITES_PER_REGION {
                self.region += 1;
            }
            Some(event)
        }
    }
}

fn main() {
    let names = suite_names();
    let config = MachineConfig::for_mechanism(Mechanism::Tps).with_memory(8 << 30);
    let mut builder = MachineBuilder::new(config).scheduler(Scheduler::RoundRobin);
    for i in 0..TENANTS {
        let name = names[i % names.len()];
        builder = builder.tenant(TenantSpec::suite(name, SuiteScale::Test, 0xbee5 + i as u64));
    }
    builder = builder
        .tenant(TenantSpec::workload(NoisyNeighbor { region: 0, step: 0 }).memory_cap(NOISY_CAP));
    let mut machine = builder.build().expect("65 tenants fit in 8 GB");
    let stats = machine.run();
    assert_eq!(stats.tenant_count(), TENANTS + 1);

    // The noisy neighbor died at its cap, mid-run, and nobody else
    // noticed: every suite tenant still completed.
    assert_eq!(stats.killed_count(), 1, "exactly the hog dies");
    match stats.outcome(NOISY) {
        TenantOutcome::Killed { cause, at_event } => {
            assert_eq!(cause, TenantFaultCause::CapExceeded);
            println!(
                "noisy neighbor (slot {NOISY}) killed at event {at_event}: {cause} \
                 (cap {} MB); {} survivors unaffected\n",
                NOISY_CAP >> 20,
                TENANTS
            );
        }
        TenantOutcome::Completed => panic!("the hog must hit its cap"),
    }
    for t in 0..TENANTS {
        assert_eq!(
            stats.outcome(t),
            TenantOutcome::Completed,
            "survivor {t} was disturbed by the kill"
        );
    }

    // Per-tenant TLB reach: the page census of each address space gives
    // the mean mapped page size; a 64-entry L1 full of pages that size
    // covers mean * 64 bytes.
    println!("per-tenant TLB reach ({} tenants, TPS):", TENANTS);
    println!(
        "  {:<4} {:<10} {:>10} {:>12} {:>12}",
        "id", "workload", "mapped", "mean page", "L1 reach"
    );
    let mut tailored_tenants = 0usize;
    for t in 0..TENANTS {
        let census = machine.os().process(t as Asid).page_table().page_census();
        let mapped: u64 = census.iter().map(|(o, n)| o.bytes() * n).sum();
        let pages: u64 = census.values().sum();
        assert!(pages > 0, "tenant {t} left no mappings behind");
        let mean = mapped / pages;
        if mean > PageOrder::P4K.bytes() {
            tailored_tenants += 1;
        }
        if t % 8 == 0 {
            println!(
                "  {:<4} {:<10} {:>7} KB {:>9} KB {:>9} KB",
                t,
                machine.tenant_label(t),
                mapped >> 10,
                mean >> 10,
                (L1_ENTRIES * mean) >> 10,
            );
        }
    }
    println!(
        "  ({} of {} tenants shown; one row per 8)",
        TENANTS / 8,
        TENANTS
    );

    // TPS should have given most tenants pages bigger than 4 KB, so the
    // shared TLB's effective reach grew with tenancy instead of being
    // split 64 ways at base-page granularity.
    assert!(
        tailored_tenants >= TENANTS / 2,
        "only {tailored_tenants}/{TENANTS} tenants got pages beyond 4 KB"
    );

    // Fragmentation snapshot of the shared buddy allocator. The hog's
    // frames went back to these free lists when it was killed, so the
    // conservation check below covers the kill-reclaim path too.
    let buddy = machine.os().buddy();
    buddy
        .check_invariants()
        .expect("buddy stays conserved after the kill");
    let hist = buddy.histogram();
    println!(
        "\nshared buddy after run: {:.1}% of {} MB free",
        100.0 * buddy.free_bytes() as f64 / buddy.total_bytes() as f64,
        buddy.total_bytes() >> 20
    );
    print!("  coverage by single page size:");
    for order in [0u8, 4, 9, 12] {
        let o = PageOrder::new(order).unwrap();
        print!(" {}={:.0}%", o.label(), 100.0 * hist.coverage(o));
    }
    println!();
    assert!(
        buddy.free_bytes() < buddy.total_bytes(),
        "tenants left no footprint"
    );

    // Every tenant did work, and the rollup attributes all of it.
    for (t, s) in stats.per_tenant.iter().enumerate() {
        assert!(s.mem.accesses > 0, "tenant {t} made no accesses");
    }
    let sum: u64 = stats.per_tenant.iter().map(|s| s.mem.accesses).sum();
    assert_eq!(sum, stats.global.mem.accesses, "per-tenant rollup mismatch");
    println!(
        "\n{} tenants ({} killed at its cap), {} total accesses, rollup exact; \
         all assertions passed",
        TENANTS + 1,
        1,
        stats.global.mem.accesses
    );
}
