//! Multi-tenant machine: 64 address spaces sharing one physical memory
//! and one ASID-tagged TLB hierarchy.
//!
//! Each tenant runs a different suite benchmark at test scale with its
//! own seed. After the run, we report per-tenant TLB reach (derived from
//! each address space's page census) and a snapshot of how fragmented
//! the shared buddy allocator ended up.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use tps::core::PageOrder;
use tps::sim::{MachineBuilder, MachineConfig, Mechanism, Scheduler, TenantSpec};
use tps::tlb::Asid;
use tps::wl::{suite_names, SuiteScale};

const TENANTS: usize = 64;
/// Entry count of the modeled L1 data TLB, used to turn a mean page
/// size into a reach figure.
const L1_ENTRIES: u64 = 64;

fn main() {
    let names = suite_names();
    let config = MachineConfig::for_mechanism(Mechanism::Tps).with_memory(8 << 30);
    let mut builder = MachineBuilder::new(config).scheduler(Scheduler::RoundRobin);
    for i in 0..TENANTS {
        let name = names[i % names.len()];
        builder = builder.tenant(TenantSpec::suite(name, SuiteScale::Test, 0xbee5 + i as u64));
    }
    let mut machine = builder.build().expect("64 tenants fit in 8 GB");
    let stats = machine.run();
    assert_eq!(stats.tenant_count(), TENANTS);

    // Per-tenant TLB reach: the page census of each address space gives
    // the mean mapped page size; a 64-entry L1 full of pages that size
    // covers mean * 64 bytes.
    println!("per-tenant TLB reach ({} tenants, TPS):", TENANTS);
    println!(
        "  {:<4} {:<10} {:>10} {:>12} {:>12}",
        "id", "workload", "mapped", "mean page", "L1 reach"
    );
    let mut tailored_tenants = 0usize;
    for t in 0..TENANTS {
        let census = machine.os().process(t as Asid).page_table().page_census();
        let mapped: u64 = census.iter().map(|(o, n)| o.bytes() * n).sum();
        let pages: u64 = census.values().sum();
        assert!(pages > 0, "tenant {t} left no mappings behind");
        let mean = mapped / pages;
        if mean > PageOrder::P4K.bytes() {
            tailored_tenants += 1;
        }
        if t % 8 == 0 {
            println!(
                "  {:<4} {:<10} {:>7} KB {:>9} KB {:>9} KB",
                t,
                machine.tenant_label(t),
                mapped >> 10,
                mean >> 10,
                (L1_ENTRIES * mean) >> 10,
            );
        }
    }
    println!(
        "  ({} of {} tenants shown; one row per 8)",
        TENANTS / 8,
        TENANTS
    );

    // TPS should have given most tenants pages bigger than 4 KB, so the
    // shared TLB's effective reach grew with tenancy instead of being
    // split 64 ways at base-page granularity.
    assert!(
        tailored_tenants >= TENANTS / 2,
        "only {tailored_tenants}/{TENANTS} tenants got pages beyond 4 KB"
    );

    // Fragmentation snapshot of the shared buddy allocator.
    let buddy = machine.os().buddy();
    let hist = buddy.histogram();
    println!(
        "\nshared buddy after run: {:.1}% of {} MB free",
        100.0 * buddy.free_bytes() as f64 / buddy.total_bytes() as f64,
        buddy.total_bytes() >> 20
    );
    print!("  coverage by single page size:");
    for order in [0u8, 4, 9, 12] {
        let o = PageOrder::new(order).unwrap();
        print!(" {}={:.0}%", o.label(), 100.0 * hist.coverage(o));
    }
    println!();
    assert!(
        buddy.free_bytes() < buddy.total_bytes(),
        "tenants left no footprint"
    );

    // Every tenant did work, and the rollup attributes all of it.
    for (t, s) in stats.per_tenant.iter().enumerate() {
        assert!(s.mem.accesses > 0, "tenant {t} made no accesses");
    }
    let sum: u64 = stats.per_tenant.iter().map(|s| s.mem.accesses).sum();
    assert_eq!(sum, stats.global.mem.accesses, "per-tenant rollup mismatch");
    println!(
        "\n{} tenants, {} total accesses, rollup exact; all assertions passed",
        TENANTS, stats.global.mem.accesses
    );
}
