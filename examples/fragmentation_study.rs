//! Fragmentation study (paper Figs. 15–16): fragment physical memory with
//! an allocation churn, show how much free memory each single page size
//! could use, then run TPS on the fragmented machine and see how much of
//! its win survives.
//!
//! ```sh
//! cargo run --release --example fragmentation_study
//! ```

use tps::core::PageOrder;
use tps::mem::{compaction, BuddyAllocator, FragmentParams, Fragmenter};
use tps::sim::{MachineBuilder, MachineConfig, Mechanism, TenantSpec};
use tps::wl::{build, SuiteScale};

fn coverage_report(buddy: &BuddyAllocator, title: &str) {
    let hist = buddy.histogram();
    println!("\n{title}:");
    println!(
        "  free: {:.1}% of {} MB",
        100.0 * buddy.free_bytes() as f64 / buddy.total_bytes() as f64,
        buddy.total_bytes() >> 20
    );
    print!("  coverage by single page size:");
    for order in [0u8, 1, 2, 3, 4, 6, 9, 10, 12] {
        let o = PageOrder::new(order).unwrap();
        print!(" {}={:.0}%", o.label(), 100.0 * hist.coverage(o));
    }
    println!();
}

fn main() {
    // 1. A heavily loaded machine: churn until 55% free, scattered.
    let mut buddy = BuddyAllocator::new(4 << 30);
    let mut fragmenter = Fragmenter::new(FragmentParams {
        target_free_fraction: 0.55,
        ..Default::default()
    });
    let pinned = fragmenter.run(&mut buddy);
    coverage_report(&buddy, "after fragmentation churn (Fig. 15)");

    // 2. Run GUPS and XSBench on the fragmented machine: THP vs TPS.
    for name in ["gups", "xsbench"] {
        let mut results = Vec::new();
        for mech in [Mechanism::Thp, Mechanism::Tps] {
            let config = MachineConfig::for_mechanism(mech)
                .with_memory(4 << 30)
                .with_initial_memory(buddy.clone());
            let stats = MachineBuilder::new(config)
                .tenant(TenantSpec::boxed(build(name, SuiteScale::Small)))
                .build()
                .expect("one tenant builds")
                .run()
                .into_solo();
            results.push((mech, stats));
        }
        let (_, thp) = &results[0];
        let (_, tps) = &results[1];
        println!(
            "\n{name}: THP misses {} | TPS misses {} | eliminated {:.1}% | TPS 4K fallbacks {}",
            thp.mem.l1_misses(),
            tps.mem.l1_misses(),
            100.0 * tps.l1_misses_eliminated_vs(thp),
            tps.os.fallback_4k,
        );
    }

    // 3. Compaction recovers contiguity (paper §III-B3).
    let outcome = compaction::compact(&mut buddy, &pinned).expect("movable list is live");
    println!(
        "\ncompaction moved {} blocks ({} pages copied)",
        outcome.moved_blocks(),
        outcome.pages_moved
    );
    coverage_report(&buddy, "after compaction");
}
